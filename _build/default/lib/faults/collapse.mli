(** Structural equivalence fault collapsing.

    Two faults are equivalent when every test detecting one detects the
    other.  Structural rules capture the classic cases:

    - a controlling-value input fault of an AND/NAND (s-a-0) or OR/NOR
      (s-a-1) gate is equivalent to the corresponding output fault;
    - input and output faults of a buffer/inverter are equivalent
      (polarity flipped for the inverter);
    - a stem fault is equivalent to the branch fault of its single
      consumer pin when the net does not fan out.

    Collapsing shrinks the target list roughly 2-3x without changing
    which tests exist, and the representative's detection data stands
    for the whole class.  The paper targets "the set of single stuck-at
    faults"; like all practical ATPG flows we target the collapsed set
    and report class sizes alongside. *)

type result = {
  representatives : Fault_list.t;  (** one fault per equivalence class *)
  class_of : int array;
      (** full-list index -> representative index in [representatives] *)
  class_sizes : int array;  (** representative index -> class size *)
}

val equivalence : Fault_list.t -> result
(** Collapse a {!Fault_list.full} universe.  The representative of each
    class is its smallest full-list index, and representatives keep
    their relative full-list order, so the collapsed list's natural
    order is still the paper's [Forig]. *)

val collapsed : Circuit.t -> Fault_list.t
(** [equivalence (Fault_list.full c)].representatives. *)

val collapse_ratio : result -> float
(** |full| / |collapsed|. *)
