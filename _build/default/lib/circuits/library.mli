(** Hand-constructed and parametric combinational circuits.

    These serve three roles: known-answer tests (their functions are
    specified, so simulators can be checked against arithmetic),
    realistic example workloads, and small well-understood inputs for
    the worked examples in the documentation. *)

val c17 : unit -> Circuit.t
(** ISCAS-85 c17: 5 inputs, 2 outputs, 6 NAND gates — the smallest
    standard benchmark. *)

val full_adder : unit -> Circuit.t
(** Inputs [a b cin], outputs [sum cout]. *)

val ripple_adder : width:int -> Circuit.t
(** [2*width + 1] inputs ([a0..] LSB first, [b0..], [cin]); [width + 1]
    outputs ([s0.. cout]). *)

val multiplier : width:int -> Circuit.t
(** Array multiplier: inputs [a0.. b0..] (LSB first), outputs
    [p0 .. p(2w-1)]. *)

val mux_tree : selects:int -> Circuit.t
(** [2^selects] data inputs then [selects] select inputs (MSB-first
    select semantics); 1 output. *)

val parity_tree : width:int -> Circuit.t
(** XOR reduction tree; 1 output. *)

val comparator : width:int -> Circuit.t
(** Unsigned comparison of [a] and [b] (LSB first): outputs
    [eq lt gt]. *)

val decoder : width:int -> Circuit.t
(** [width] inputs, [2^width] one-hot outputs (output [i] high when the
    input reads [i], input 0 = LSB). *)

val alu : width:int -> Circuit.t
(** A small 4-operation ALU: inputs [op1 op0 a0.. b0.. cin], outputs
    [r0 .. r(w-1) cout].  Ops: 00 AND, 01 OR, 10 XOR, 11 ADD (with
    carry). *)

val carry_lookahead_adder : width:int -> Circuit.t
(** Same interface as {!ripple_adder} ([a0.. b0.. cin] to [s0.. cout])
    but with 4-bit carry-lookahead groups — a shallower, more
    fanout-heavy adder that stresses reconvergent analysis. *)

val barrel_shifter : width:int -> Circuit.t
(** Left-rotate: [width] data inputs ([d0..], LSB first) and
    [log2 width] shift-amount inputs ([s0..], LSB first = rotate by 1);
    [width] outputs [o0..].  [width] must be a power of two between 2
    and 64. *)
