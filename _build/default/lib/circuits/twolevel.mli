(** Two-level (sum-of-products) logic minimisation and synthesis.

    A small Quine–McCluskey implementation: minterms are merged into
    prime implicants, then a cover is chosen (essential primes first,
    greedy by coverage after).  Exact enough for the FSM benchmarks this
    library synthesises (up to 16 variables). *)

type cube = { mask : int; value : int }
(** A product term over [n] variables: bit [i] of [mask] set means
    variable [i] is specified, in which case bit [i] of [value] is its
    literal polarity.  Unspecified bits of [value] are zero. *)

val cube_covers : cube -> int -> bool
(** Does the cube contain the minterm? *)

val primes : n:int -> on_set:int list -> cube list
(** All prime implicants of the on-set (no don't-cares). *)

val cover : n:int -> on_set:int list -> cube list
(** A prime cover of the on-set: every on-set minterm is covered and no
    off-set minterm is. *)

val synthesize :
  name:string -> n_inputs:int -> input_names:string array -> (string * int list) list ->
  Circuit.t
(** [synthesize ~name ~n_inputs ~input_names outputs] builds an AND-OR
    circuit with shared input inverters.  Each output is given by its
    on-set (minterms over the inputs, input 0 = bit 0 = LSB).
    @raise Invalid_argument if [n_inputs > 16] or names don't match. *)
