(** The synthetic benchmark suite.

    Stand-ins for the irredundant combinational cores of the ISCAS-89
    circuits the paper evaluates (see DESIGN.md for the substitution
    rationale).  Each entry matches the published circuit's input count
    (Table 4's "inp" column — PIs plus scanned flip-flops) and
    approximate gate count; the logic itself is drawn from
    {!Generate.random} with a fixed per-entry seed, so the suite is
    identical in every build. *)

type entry = {
  name : string;  (** [syn208] stands in for [irs208], etc. *)
  paper_name : string;  (** the circuit it stands in for *)
  pis : int;
  pos : int;  (** target primary-output count (POs + scanned DFFs of the original) *)
  gates : int;
  seed : int;
  big : bool;  (** the two large circuits, excluded from quick runs *)
}

val entries : entry list
(** All fourteen circuits, in the paper's Table 4 order. *)

val small : entry list
(** Entries with [big = false] (through [syn1196]). *)

val find : string -> entry option
val names : unit -> string list

val build : entry -> Circuit.t
(** Deterministically construct the circuit: random generation followed
    by redundancy removal ({!Irredundant.remove}), mirroring how the
    paper's "irredundant versions" were produced.  Results are memoised
    per process. *)

val build_by_name : string -> Circuit.t
(** @raise Invalid_argument on an unknown name.  Also accepts the
    library circuits ["c17"] and ["lion"] (the lion full-scan
    combinational core). *)
