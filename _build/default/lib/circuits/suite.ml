type entry = {
  name : string;
  paper_name : string;
  pis : int;
  pos : int;
  gates : int;
  seed : int;
  big : bool;
}

(* Input counts follow Table 4 of the paper; gate counts are the
   published ISCAS-89 combinational-core sizes, used as calibration
   targets by [build]. *)
let entries =
  [
    { name = "syn208"; paper_name = "irs208"; pis = 19; pos = 10; gates = 112; seed = 208; big = false };
    { name = "syn298"; paper_name = "irs298"; pis = 17; pos = 20; gates = 119; seed = 298; big = false };
    { name = "syn344"; paper_name = "irs344"; pis = 24; pos = 26; gates = 160; seed = 344; big = false };
    { name = "syn382"; paper_name = "irs382"; pis = 24; pos = 27; gates = 158; seed = 382; big = false };
    { name = "syn400"; paper_name = "irs400"; pis = 24; pos = 27; gates = 162; seed = 400; big = false };
    { name = "syn420"; paper_name = "irs420"; pis = 35; pos = 18; gates = 218; seed = 420; big = false };
    { name = "syn510"; paper_name = "irs510"; pis = 25; pos = 13; gates = 211; seed = 510; big = false };
    { name = "syn526"; paper_name = "irs526"; pis = 24; pos = 27; gates = 193; seed = 526; big = false };
    { name = "syn641"; paper_name = "irs641"; pis = 54; pos = 42; gates = 379; seed = 641; big = false };
    { name = "syn820"; paper_name = "irs820"; pis = 23; pos = 24; gates = 289; seed = 820; big = false };
    { name = "syn953"; paper_name = "irs953"; pis = 45; pos = 52; gates = 395; seed = 953; big = false };
    { name = "syn1196"; paper_name = "irs1196"; pis = 32; pos = 32; gates = 529; seed = 1196; big = false };
    { name = "syn5378"; paper_name = "irs5378"; pis = 214; pos = 228; gates = 2779; seed = 5378; big = true };
    { name = "syn13207"; paper_name = "irs13207"; pis = 699; pos = 790; gates = 7951; seed = 13207; big = true };
  ]

let small = List.filter (fun e -> not e.big) entries
let find name = List.find_opt (fun e -> e.name = name) entries
let names () = List.map (fun e -> e.name) entries

let cache : (string, Circuit.t) Hashtbl.t = Hashtbl.create 16

(* Suite circuits are produced like the paper's "irredundant versions":
   generate, remove redundancy, and re-attach any input the removal
   orphaned.  Redundancy removal shrinks random logic by an unstable
   factor, so the generator size is calibrated by iteration until the
   result lands near the published gate count.  Every step is seeded,
   so the outcome is identical in every build. *)
let build e =
  match Hashtbl.find_opt cache e.name with
  | Some c -> c
  | None ->
      (* Gentler settings on the two large circuits keep suite
         construction fast: a low backtrack limit still proves the bulk
         of the redundancies, and a handful of residual ones matches
         real "irredundant" benchmark releases closely enough. *)
      let max_rounds = if e.big then 3 else 24 in
      let backtrack_limit = if e.big then 64 else 4096 in
      let random_vectors = if e.big then 8192 else 2048 in
      let attempts = if e.big then 2 else 4 in
      let cook gates =
        let raw =
          Generate.random ~seed:e.seed ~name:e.name
            (Generate.profile ~outputs:e.pos ~pis:e.pis ~gates ())
        in
        fst (Irredundant.remove ~max_rounds ~backtrack_limit ~random_vectors raw)
      in
      let rec calibrate gates attempt =
        let c = cook gates in
        let got = Circuit.gate_count c in
        if attempt >= attempts || float_of_int got >= 0.85 *. float_of_int e.gates then c
        else begin
          let gates' = max (gates + 8) (gates * e.gates / max 1 got) in
          calibrate gates' (attempt + 1)
        end
      in
      let c = calibrate e.gates 1 in
      (* Re-attach orphaned inputs and clean up once more. *)
      let rng = Util.Rng.create (e.seed lxor 0x5eed) in
      let c = Generate.revive_dead_inputs rng c in
      let c, _ =
        Irredundant.remove ~max_rounds:(min 4 max_rounds) ~backtrack_limit ~random_vectors c
      in
      let c = Generate.revive_dead_inputs rng c in
      Hashtbl.replace cache e.name c;
      c

let build_by_name name =
  match find name with
  | Some e -> build e
  | None -> (
      match name with
      | "c17" -> Library.c17 ()
      | "lion" -> Kiss.to_combinational (Kiss.lion ())
      | _ -> invalid_arg (Printf.sprintf "Suite.build_by_name: unknown circuit %S" name))
