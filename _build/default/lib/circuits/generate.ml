module Rng = Util.Rng
module B = Circuit.Builder

type profile = {
  pis : int;
  gates : int;
  outputs : int;
  locality : float;
  reconvergence : float;
}

let profile ?outputs ~pis ~gates () =
  if pis <= 0 || gates <= 0 then invalid_arg "Generate.profile: pis and gates must be positive";
  let outputs = match outputs with Some o -> max 1 o | None -> max 2 (pis / 2) in
  { pis; gates; outputs; locality = 0.6; reconvergence = 0.2 }

(* Weighted gate-kind mix, roughly the profile of synthesised benchmark
   logic: NAND-rich, with enough parity gates that fault effects
   propagate (XOR never masks), which keeps random logic testable. *)
let pick_kind rng =
  let r = Rng.int rng 100 in
  if r < 25 then Gate.Nand
  else if r < 40 then Gate.Nor
  else if r < 55 then Gate.And
  else if r < 70 then Gate.Or
  else if r < 80 then Gate.Not
  else if r < 90 then Gate.Xor
  else if r < 95 then Gate.Xnor
  else Gate.Buf

let pick_arity rng k =
  match k with
  | Gate.Not | Gate.Buf -> 1
  | Gate.Xor | Gate.Xnor -> 2
  | _ ->
      let r = Rng.int rng 10 in
      if r < 7 then 2 else if r < 9 then 3 else 4

let random ?(seed = 0) ~name prof =
  let rng = Rng.create seed in
  let b = B.create ~title:name () in
  let n_total = prof.pis + prof.gates in
  let nodes = Array.make n_total 0 in
  let fanout_count = Array.make n_total 0 in
  for i = 0 to prof.pis - 1 do
    nodes.(i) <- B.input b (Printf.sprintf "pi%d" i)
  done;
  let total = ref prof.pis in
  for g = 0 to prof.gates - 1 do
    let k = pick_kind rng in
    let arity = min (pick_arity rng k) !total in
    (* Draw distinct fanins; locality biases towards recent nodes to
       deepen the circuit, the rest create reconvergent fanout. *)
    let window = max 8 (!total / 4) in
    let chosen = ref [] in
    let attempts = ref 0 in
    while List.length !chosen < arity && !attempts < 64 do
      incr attempts;
      let idx =
        if Rng.float rng 1.0 < prof.locality && !total > window then
          !total - 1 - Rng.int rng window
        else Rng.int rng !total
      in
      if not (List.mem idx !chosen) then chosen := idx :: !chosen
    done;
    let rec pad i =
      if List.length !chosen < arity && i < !total then begin
        if not (List.mem i !chosen) then chosen := i :: !chosen;
        pad (i + 1)
      end
    in
    pad 0;
    let chosen = List.rev !chosen in
    List.iter (fun idx -> fanout_count.(idx) <- fanout_count.(idx) + 1) chosen;
    nodes.(!total) <- B.gate b k (Printf.sprintf "g%d" g) (List.map (fun i -> nodes.(i)) chosen);
    incr total
  done;
  (* Every sink is observed, so no logic is structurally dead.  Sinks
     occur naturally at roughly a quarter of the nodes; [prof.outputs]
     only acts as a lower bound, which unbiased draws always exceed. *)
  for i = 0 to n_total - 1 do
    if fanout_count.(i) = 0 then B.mark_output b nodes.(i)
  done;
  B.finish b

let revive_dead_inputs rng c =
  let dead =
    Array.to_list (Circuit.inputs c)
    |> List.filter (fun pi -> Circuit.fanout_count c pi = 0 && not (Circuit.is_output c pi))
  in
  if dead = [] then c
  else begin
    (* Patch sites: live gates with at least one fanin. *)
    let gates = ref [] in
    Circuit.iter_nodes c (fun n ->
        if Array.length (Circuit.fanins c n) > 0 && Circuit.kind c n <> Gate.Dff then
          gates := n :: !gates);
    let gates = Array.of_list !gates in
    if Array.length gates = 0 then c
    else begin
      (* dead PI -> gate whose pin 0 gets an XOR patch *)
      let patch = Hashtbl.create 8 in
      List.iter
        (fun pi ->
          let g = gates.(Rng.int rng (Array.length gates)) in
          let cur = Option.value ~default:[] (Hashtbl.find_opt patch g) in
          Hashtbl.replace patch g (pi :: cur))
        dead;
      let b = B.create ~title:(Circuit.title c) () in
      let ids = Array.make (Circuit.node_count c) (-1) in
      Array.iter (fun pi -> ids.(pi) <- B.input b (Circuit.name c pi)) (Circuit.inputs c);
      Array.iter
        (fun n ->
          if ids.(n) < 0 then
            match Circuit.kind c n with
            | Gate.Input -> ()
            | k ->
                let fanins = Array.map (fun f -> ids.(f)) (Circuit.fanins c n) in
                (match Hashtbl.find_opt patch n with
                | Some pis ->
                    let x =
                      B.gate b Gate.Xor
                        (Circuit.name c n ^ "_rv")
                        (fanins.(0) :: List.map (fun pi -> ids.(pi)) pis)
                    in
                    fanins.(0) <- x
                | None -> ());
                ids.(n) <- B.gate b k (Circuit.name c n) (Array.to_list fanins))
        (Circuit.topological_order c);
      Array.iter (fun o -> B.mark_output b ids.(o)) (Circuit.outputs c);
      B.finish b
    end
  end
