type cube = { mask : int; value : int }

let cube_covers c m = m land c.mask = c.value

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

(* Merge two cubes differing in exactly one specified bit. *)
let merge a b =
  if a.mask <> b.mask then None
  else begin
    let d = a.value lxor b.value in
    if popcount d = 1 then Some { mask = a.mask land lnot d; value = a.value land lnot d }
    else None
  end

let primes ~n ~on_set =
  if n < 0 || n > 16 then invalid_arg "Twolevel.primes: 0..16 variables";
  let full = (1 lsl n) - 1 in
  let dedup cubes =
    let t = Hashtbl.create 64 in
    List.filter
      (fun c ->
        if Hashtbl.mem t c then false
        else begin
          Hashtbl.add t c ();
          true
        end)
      cubes
  in
  let rec round cubes acc_primes =
    if cubes = [] then acc_primes
    else begin
      let arr = Array.of_list cubes in
      let used = Array.make (Array.length arr) false in
      let next = ref [] in
      for i = 0 to Array.length arr - 1 do
        for j = i + 1 to Array.length arr - 1 do
          match merge arr.(i) arr.(j) with
          | Some m ->
              used.(i) <- true;
              used.(j) <- true;
              next := m :: !next
          | None -> ()
        done
      done;
      let primes_here = ref acc_primes in
      Array.iteri (fun i c -> if not used.(i) then primes_here := c :: !primes_here) arr;
      round (dedup !next) !primes_here
    end
  in
  let minterms = List.map (fun m -> { mask = full; value = m land full }) (dedup on_set) in
  dedup (round minterms [])

let cover ~n ~on_set =
  let on_set = List.sort_uniq compare on_set in
  if on_set = [] then []
  else begin
    let ps = Array.of_list (primes ~n ~on_set) in
    let covered = Hashtbl.create 64 in
    let chosen = ref [] in
    let choose i =
      chosen := ps.(i) :: !chosen;
      List.iter (fun m -> if cube_covers ps.(i) m then Hashtbl.replace covered m ()) on_set
    in
    (* Essential primes: the only cube covering some minterm. *)
    List.iter
      (fun m ->
        let covering = ref [] in
        Array.iteri (fun i c -> if cube_covers c m then covering := i :: !covering) ps;
        match !covering with
        | [ i ] when not (List.exists (fun c -> c = ps.(i)) !chosen) -> choose i
        | _ -> ())
      on_set;
    (* Greedy: repeatedly take the cube covering most remaining minterms. *)
    let remaining () = List.filter (fun m -> not (Hashtbl.mem covered m)) on_set in
    let rec loop () =
      match remaining () with
      | [] -> ()
      | rem ->
          let best = ref (-1) and best_cnt = ref 0 in
          Array.iteri
            (fun i c ->
              let cnt = List.length (List.filter (cube_covers c) rem) in
              if cnt > !best_cnt then begin
                best := i;
                best_cnt := cnt
              end)
            ps;
          assert (!best >= 0);
          choose !best;
          loop ()
    in
    loop ();
    List.rev !chosen
  end

module B = Circuit.Builder

let synthesize ~name ~n_inputs ~input_names outputs =
  if n_inputs > 16 then invalid_arg "Twolevel.synthesize: at most 16 inputs";
  if Array.length input_names <> n_inputs then
    invalid_arg "Twolevel.synthesize: input_names width mismatch";
  let b = B.create ~title:name () in
  let ins = Array.map (fun nm -> B.input b nm) input_names in
  (* Inverters are created lazily and shared between outputs. *)
  let inverters = Array.make n_inputs None in
  let inv i =
    match inverters.(i) with
    | Some id -> id
    | None ->
        let id = B.gate b Gate.Not (input_names.(i) ^ "_n") [ ins.(i) ] in
        inverters.(i) <- Some id;
        id
  in
  let cube_gate oname idx (c : cube) =
    let literals = ref [] in
    for i = n_inputs - 1 downto 0 do
      if (c.mask lsr i) land 1 = 1 then
        literals := (if (c.value lsr i) land 1 = 1 then ins.(i) else inv i) :: !literals
    done;
    match !literals with
    | [] -> B.const b (Printf.sprintf "%s_t%d" oname idx) true
    | [ l ] -> B.gate b Gate.Buf (Printf.sprintf "%s_t%d" oname idx) [ l ]
    | ls -> B.gate b Gate.And (Printf.sprintf "%s_t%d" oname idx) ls
  in
  List.iter
    (fun (oname, on_set) ->
      let cubes = cover ~n:n_inputs ~on_set in
      let out =
        match cubes with
        | [] -> B.const b oname false
        | [ c ] -> (
            (* Single cube: rename via a buffer to keep the output name. *)
            match cube_gate (oname ^ "_c") 0 c with t -> B.gate b Gate.Buf oname [ t ])
        | cs -> B.gate b Gate.Or oname (List.mapi (cube_gate oname) cs)
      in
      B.mark_output b out)
    outputs;
  B.finish b
