(** Seeded random multi-level logic.

    The generator grows a circuit gate by gate.  Most fanins are drawn
    from a pool of not-yet-consumed nodes, keeping the structure close
    to a tree — trees have no redundancy, so the raw circuit is largely
    testable, like the synthesised (and redundancy-removed) benchmark
    logic it stands in for.  A [reconvergence] fraction of draws reuses
    already-consumed nodes, creating fanout and reconvergent paths.  A
    recency bias makes the circuit deep rather than wide.  Every
    unconsumed node becomes a primary output, so no logic is dead by
    construction.

    Identical parameters and seed always produce the identical
    circuit. *)

type profile = {
  pis : int;  (** primary inputs *)
  gates : int;  (** logic gates to create *)
  outputs : int;
      (** approximate primary-output count: the fresh pool is never
          drained below this floor, so about this many sinks remain *)
  locality : float;
      (** probability of drawing from the recent window rather than
          uniformly (default 0.6) *)
  reconvergence : float;
      (** probability a fanin reuses an already-consumed node (default
          0.2) *)
}

val profile : ?outputs:int -> pis:int -> gates:int -> unit -> profile
(** [outputs] defaults to [max 2 (pis / 2)]. *)

val random : ?seed:int -> name:string -> profile -> Circuit.t
(** Default [seed = 0]. *)

val revive_dead_inputs : Util.Rng.t -> Circuit.t -> Circuit.t
(** Re-attach primary inputs that drive no logic (redundancy removal
    can orphan them): each dead input is XORed into one input pin of a
    deterministically chosen live gate.  XOR keeps both the original
    signal and the revived input observable, so the patch rarely
    introduces new redundancy.  Circuits without dead inputs are
    returned unchanged. *)
