module B = Circuit.Builder

let c17 () =
  Bench_format.parse_string ~title:"c17"
    {|# c17 (ISCAS-85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
|}

(* One full-adder stage built from XOR/AND/OR; returns (sum, cout). *)
let adder_stage b tag a bb cin =
  let x1 = B.gate b Gate.Xor (tag ^ "_x1") [ a; bb ] in
  let sum = B.gate b Gate.Xor (tag ^ "_sum") [ x1; cin ] in
  let a1 = B.gate b Gate.And (tag ^ "_a1") [ a; bb ] in
  let a2 = B.gate b Gate.And (tag ^ "_a2") [ x1; cin ] in
  let cout = B.gate b Gate.Or (tag ^ "_cout") [ a1; a2 ] in
  (sum, cout)

let full_adder () =
  let b = B.create ~title:"full_adder" () in
  let a = B.input b "a" and bb = B.input b "b" and cin = B.input b "cin" in
  let sum, cout = adder_stage b "fa" a bb cin in
  B.mark_output b sum;
  B.mark_output b cout;
  B.finish b

let check_width width =
  if width <= 0 then invalid_arg "Library: width must be positive"

let ripple_adder ~width =
  check_width width;
  let b = B.create ~title:(Printf.sprintf "radd%d" width) () in
  let a = Array.init width (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init width (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let cin = B.input b "cin" in
  let carry = ref cin in
  for i = 0 to width - 1 do
    let sum, cout = adder_stage b (Printf.sprintf "fa%d" i) a.(i) bv.(i) !carry in
    B.mark_output b sum;
    carry := cout
  done;
  B.mark_output b !carry;
  B.finish b

let multiplier ~width =
  check_width width;
  let b = B.create ~title:(Printf.sprintf "mul%d" width) () in
  let a = Array.init width (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init width (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let zero = B.const b "zero" false in
  (* Partial products accumulated row by row with ripple carries. *)
  let acc = Array.make (2 * width) zero in
  for j = 0 to width - 1 do
    let carry = ref zero in
    for i = 0 to width - 1 do
      let pp = B.gate b Gate.And (Printf.sprintf "pp%d_%d" i j) [ a.(i); bv.(j) ] in
      let sum, cout =
        adder_stage b (Printf.sprintf "m%d_%d" i j) acc.(i + j) pp !carry
      in
      acc.(i + j) <- sum;
      carry := cout
    done;
    acc.(j + width) <- !carry
  done;
  Array.iter (fun p -> B.mark_output b p) acc;
  B.finish b

let mux_tree ~selects =
  if selects <= 0 || selects > 10 then invalid_arg "Library.mux_tree: 1..10 selects";
  let b = B.create ~title:(Printf.sprintf "mux%d" (1 lsl selects)) () in
  let data = Array.init (1 lsl selects) (fun i -> B.input b (Printf.sprintf "d%d" i)) in
  let sel = Array.init selects (fun i -> B.input b (Printf.sprintf "s%d" i)) in
  (* Reduce pairwise per select line, MSB (s0) splitting the tree last. *)
  let mux2 tag s d0 d1 =
    let ns = B.gate b Gate.Not (tag ^ "_n") [ s ] in
    let p0 = B.gate b Gate.And (tag ^ "_p0") [ ns; d0 ] in
    let p1 = B.gate b Gate.And (tag ^ "_p1") [ s; d1 ] in
    B.gate b Gate.Or (tag ^ "_o") [ p0; p1 ]
  in
  let layer = ref (Array.to_list data) in
  for level = selects - 1 downto 0 do
    let rec pair acc idx = function
      | d0 :: d1 :: rest ->
          pair (mux2 (Printf.sprintf "m%d_%d" level idx) sel.(level) d0 d1 :: acc) (idx + 1) rest
      | [] -> List.rev acc
      | [ _ ] -> invalid_arg "Library.mux_tree: internal pairing error"
    in
    layer := pair [] 0 !layer
  done;
  (match !layer with
  | [ out ] -> B.mark_output b out
  | _ -> invalid_arg "Library.mux_tree: reduction did not converge");
  B.finish b

let parity_tree ~width =
  check_width width;
  let b = B.create ~title:(Printf.sprintf "parity%d" width) () in
  let ins = Array.init width (fun i -> B.input b (Printf.sprintf "i%d" i)) in
  let rec reduce idx = function
    | [] -> invalid_arg "Library.parity_tree: empty"
    | [ x ] -> x
    | xs ->
        let rec pair acc j = function
          | x :: y :: rest ->
              pair (B.gate b Gate.Xor (Printf.sprintf "x%d_%d" idx j) [ x; y ] :: acc) (j + 1) rest
          | [ x ] -> List.rev (x :: acc)
          | [] -> List.rev acc
        in
        reduce (idx + 1) (pair [] 0 xs)
  in
  B.mark_output b (reduce 0 (Array.to_list ins));
  B.finish b

let comparator ~width =
  check_width width;
  let b = B.create ~title:(Printf.sprintf "cmp%d" width) () in
  let a = Array.init width (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init width (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  (* Bitwise equality, then lexicographic scan from the MSB down:
     lt = OR_i (~a_i & b_i & AND_{j>i} eq_j). *)
  let eqs =
    Array.init width (fun i -> B.gate b Gate.Xnor (Printf.sprintf "eq%d" i) [ a.(i); bv.(i) ])
  in
  let eq_all = B.gate b Gate.And "eq" (Array.to_list eqs) in
  let lt_terms = ref [] and gt_terms = ref [] in
  for i = width - 1 downto 0 do
    let higher_eq = Array.to_list (Array.sub eqs (i + 1) (width - 1 - i)) in
    let na = B.gate b Gate.Not (Printf.sprintf "na%d" i) [ a.(i) ] in
    let nb = B.gate b Gate.Not (Printf.sprintf "nb%d" i) [ bv.(i) ] in
    let lt = B.gate b Gate.And (Printf.sprintf "lt%d" i) (na :: bv.(i) :: higher_eq) in
    let gt = B.gate b Gate.And (Printf.sprintf "gt%d" i) (a.(i) :: nb :: higher_eq) in
    lt_terms := lt :: !lt_terms;
    gt_terms := gt :: !gt_terms
  done;
  let lt_out =
    match !lt_terms with [ t ] -> B.gate b Gate.Buf "lt" [ t ] | ts -> B.gate b Gate.Or "lt" ts
  in
  let gt_out =
    match !gt_terms with [ t ] -> B.gate b Gate.Buf "gt" [ t ] | ts -> B.gate b Gate.Or "gt" ts
  in
  B.mark_output b eq_all;
  B.mark_output b lt_out;
  B.mark_output b gt_out;
  B.finish b

let decoder ~width =
  if width <= 0 || width > 10 then invalid_arg "Library.decoder: 1..10 inputs";
  let b = B.create ~title:(Printf.sprintf "dec%d" width) () in
  let ins = Array.init width (fun i -> B.input b (Printf.sprintf "i%d" i)) in
  let neg = Array.init width (fun i -> B.gate b Gate.Not (Printf.sprintf "n%d" i) [ ins.(i) ]) in
  for v = 0 to (1 lsl width) - 1 do
    let terms =
      List.init width (fun i -> if (v lsr i) land 1 = 1 then ins.(i) else neg.(i))
    in
    let o =
      match terms with
      | [ t ] -> B.gate b Gate.Buf (Printf.sprintf "o%d" v) [ t ]
      | ts -> B.gate b Gate.And (Printf.sprintf "o%d" v) ts
    in
    B.mark_output b o
  done;
  B.finish b

let alu ~width =
  check_width width;
  let b = B.create ~title:(Printf.sprintf "alu%d" width) () in
  let op1 = B.input b "op1" and op0 = B.input b "op0" in
  let a = Array.init width (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init width (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let cin = B.input b "cin" in
  let nop1 = B.gate b Gate.Not "nop1" [ op1 ] in
  let nop0 = B.gate b Gate.Not "nop0" [ op0 ] in
  let sel_and = B.gate b Gate.And "sel_and" [ nop1; nop0 ] in
  let sel_or = B.gate b Gate.And "sel_or" [ nop1; op0 ] in
  let sel_xor = B.gate b Gate.And "sel_xor" [ op1; nop0 ] in
  let sel_add = B.gate b Gate.And "sel_add" [ op1; op0 ] in
  let carry = ref cin in
  for i = 0 to width - 1 do
    let andi = B.gate b Gate.And (Printf.sprintf "and%d" i) [ a.(i); bv.(i) ] in
    let ori = B.gate b Gate.Or (Printf.sprintf "or%d" i) [ a.(i); bv.(i) ] in
    let xori = B.gate b Gate.Xor (Printf.sprintf "xor%d" i) [ a.(i); bv.(i) ] in
    let sum, cout = adder_stage b (Printf.sprintf "add%d" i) a.(i) bv.(i) !carry in
    carry := cout;
    let t0 = B.gate b Gate.And (Printf.sprintf "t0_%d" i) [ sel_and; andi ] in
    let t1 = B.gate b Gate.And (Printf.sprintf "t1_%d" i) [ sel_or; ori ] in
    let t2 = B.gate b Gate.And (Printf.sprintf "t2_%d" i) [ sel_xor; xori ] in
    let t3 = B.gate b Gate.And (Printf.sprintf "t3_%d" i) [ sel_add; sum ] in
    let r = B.gate b Gate.Or (Printf.sprintf "r%d" i) [ t0; t1; t2; t3 ] in
    B.mark_output b r
  done;
  let cout = B.gate b Gate.And "cout" [ sel_add; !carry ] in
  B.mark_output b cout;
  B.finish b

let carry_lookahead_adder ~width =
  check_width width;
  let b = B.create ~title:(Printf.sprintf "cla%d" width) () in
  let a = Array.init width (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init width (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let cin = B.input b "cin" in
  (* Propagate/generate per bit. *)
  let p = Array.init width (fun i -> B.gate b Gate.Xor (Printf.sprintf "p%d" i) [ a.(i); bv.(i) ]) in
  let g = Array.init width (fun i -> B.gate b Gate.And (Printf.sprintf "g%d" i) [ a.(i); bv.(i) ]) in
  (* Lookahead carries in groups of 4, rippling between groups:
     c_{i+1} = g_i + p_i g_{i-1} + ... + (p_i .. p_lo) c_lo. *)
  let carry = Array.make (width + 1) cin in
  let group_start = ref 0 in
  while !group_start < width do
    let lo = !group_start in
    let hi = min (lo + 4) width in
    for i = lo to hi - 1 do
      (* terms for c_{i+1} *)
      let terms = ref [] in
      for j = lo to i do
        (* p_i p_{i-1} .. p_{j+1} g_j *)
        let lits = ref [ g.(j) ] in
        for k = j + 1 to i do
          lits := p.(k) :: !lits
        done;
        let t =
          match !lits with
          | [ single ] -> single
          | ls -> B.gate b Gate.And (Printf.sprintf "cg%d_%d" (i + 1) j) ls
        in
        terms := t :: !terms
      done;
      (* (p_i .. p_lo) c_lo *)
      let lits = ref [ carry.(lo) ] in
      for k = lo to i do
        lits := p.(k) :: !lits
      done;
      let t = B.gate b Gate.And (Printf.sprintf "cp%d" (i + 1)) !lits in
      terms := t :: !terms;
      carry.(i + 1) <-
        (match !terms with
        | [ single ] -> single
        | ts -> B.gate b Gate.Or (Printf.sprintf "c%d" (i + 1)) ts)
    done;
    group_start := hi
  done;
  for i = 0 to width - 1 do
    let s = B.gate b Gate.Xor (Printf.sprintf "s%d" i) [ p.(i); carry.(i) ] in
    B.mark_output b s
  done;
  B.mark_output b carry.(width);
  B.finish b

let barrel_shifter ~width =
  let log2 =
    let rec go k = if 1 lsl k >= width then k else go (k + 1) in
    go 0
  in
  if width < 2 || width > 64 || 1 lsl log2 <> width then
    invalid_arg "Library.barrel_shifter: width must be a power of two in 2..64";
  let b = B.create ~title:(Printf.sprintf "bshift%d" width) () in
  let data = Array.init width (fun i -> B.input b (Printf.sprintf "d%d" i)) in
  let sel = Array.init log2 (fun i -> B.input b (Printf.sprintf "s%d" i)) in
  (* Stage k rotates left by 2^k when s_k is high. *)
  let mux2 tag s d0 d1 =
    let ns = B.gate b Gate.Not (tag ^ "_n") [ s ] in
    let q0 = B.gate b Gate.And (tag ^ "_q0") [ ns; d0 ] in
    let q1 = B.gate b Gate.And (tag ^ "_q1") [ s; d1 ] in
    B.gate b Gate.Or (tag ^ "_o") [ q0; q1 ]
  in
  let layer = ref data in
  for k = 0 to log2 - 1 do
    let shift = 1 lsl k in
    layer :=
      Array.init width (fun i ->
          (* output bit i comes from input bit (i - shift) mod width
             when rotating left by [shift] *)
          let src = (i - shift + width) mod width in
          mux2 (Printf.sprintf "st%d_%d" k i) sel.(k) !layer.(i) !layer.(src))
  done;
  Array.iter (fun o -> B.mark_output b o) !layer;
  B.finish b
