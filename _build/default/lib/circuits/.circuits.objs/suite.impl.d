lib/circuits/suite.ml: Circuit Generate Hashtbl Irredundant Kiss Library List Printf Util
