lib/circuits/kiss.mli: Circuit
