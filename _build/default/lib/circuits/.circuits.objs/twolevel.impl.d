lib/circuits/twolevel.ml: Array Circuit Gate Hashtbl List Printf
