lib/circuits/library.ml: Array Bench_format Circuit Gate List Printf
