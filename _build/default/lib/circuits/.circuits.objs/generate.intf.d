lib/circuits/generate.mli: Circuit Util
