lib/circuits/generate.ml: Array Circuit Gate Hashtbl List Option Printf Util
