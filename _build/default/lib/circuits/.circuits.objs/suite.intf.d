lib/circuits/suite.mli: Circuit
