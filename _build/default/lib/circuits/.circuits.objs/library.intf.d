lib/circuits/library.mli: Circuit
