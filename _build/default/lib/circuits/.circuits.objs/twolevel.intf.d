lib/circuits/twolevel.mli: Circuit
