lib/circuits/kiss.ml: Array Circuit Gate List Printf String Twolevel
