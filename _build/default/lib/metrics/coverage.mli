(** Fault-coverage curves and the paper's steepness metric.

    For an ordered test set [T = <t1 .. tk>], [n(i)] is the number of
    faults detected by the first [i] tests.  The curve [(i, n(i))] is
    Figure 1; the expected number of tests to detect a fault,

    [AVE = (sum_i i * (n(i) - n(i-1))) / n(k)],

    is Table 7's metric (lower = steeper curve = defects caught
    earlier on the tester). *)

type t = {
  detected_at : int array;  (** per test index i (0-based), n(i+1) *)
  total_faults : int;  (** size of the fault universe *)
}

val of_engine_result : Fault_list.t -> Engine.result -> t
(** Curve of a freshly generated test set, using the engine's
    first-detection records. *)

val of_test_set : Fault_list.t -> Patterns.t -> t
(** Curve of an arbitrary test set (fault simulation with dropping). *)

val n_at : t -> int -> int
(** [n_at c i] is [n(i)]: faults detected by the first [i] tests;
    [n_at c 0 = 0]. *)

val tests : t -> int
(** [k], the number of tests. *)

val final_coverage : t -> float
(** [n(k) / total_faults]. *)

val ave : t -> float
(** The expected test count to detection.  0 when nothing is
    detected. *)

val points : t -> (float * float) array
(** Curve as (percent of tests applied, percent fault coverage), for
    plotting — the paper's Figure 1 axes. *)

val truncated_coverage : t -> keep:int -> float
(** Coverage after discarding all but the first [keep] tests —
    the paper's motivation: a tester with limited memory drops the
    tail of the test set, and a steeper curve loses less.
    [truncated_coverage t ~keep:(tests t) = final_coverage t]. *)

val tests_for_coverage : t -> target:float -> int option
(** Smallest prefix length reaching [target] (fraction of the fault
    universe), if the full set ever does — "how long until 95%?". *)
