type t = { detected_at : int array; total_faults : int }

let of_detections ~n_tests ~total_faults first_detection =
  let per_test = Array.make n_tests 0 in
  Array.iter
    (fun d -> if d >= 0 then per_test.(d) <- per_test.(d) + 1)
    first_detection;
  let cum = Array.make n_tests 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i c ->
      acc := !acc + c;
      cum.(i) <- !acc)
    per_test;
  { detected_at = cum; total_faults }

let of_engine_result fl (r : Engine.result) =
  of_detections ~n_tests:(Patterns.count r.Engine.tests) ~total_faults:(Fault_list.count fl)
    r.Engine.detected_by

let of_test_set fl pats =
  let { Faultsim.first_detection; _ } = Faultsim.with_dropping fl pats in
  of_detections ~n_tests:(Patterns.count pats) ~total_faults:(Fault_list.count fl)
    first_detection

let n_at t i =
  if i <= 0 then 0
  else if i > Array.length t.detected_at then invalid_arg "Coverage.n_at"
  else t.detected_at.(i - 1)

let tests t = Array.length t.detected_at

let final_coverage t =
  if t.total_faults = 0 then 1.0
  else float_of_int (n_at t (tests t)) /. float_of_int t.total_faults

let ave t =
  let k = tests t in
  let total = n_at t k in
  if total = 0 then 0.0
  else begin
    let sum = ref 0 in
    for i = 1 to k do
      sum := !sum + (i * (n_at t i - n_at t (i - 1)))
    done;
    float_of_int !sum /. float_of_int total
  end

let points t =
  let k = tests t in
  let kf = float_of_int k and nf = float_of_int t.total_faults in
  Array.init k (fun i ->
      (float_of_int (i + 1) /. kf *. 100.0, float_of_int (n_at t (i + 1)) /. nf *. 100.0))

let truncated_coverage t ~keep =
  if t.total_faults = 0 then 1.0
  else begin
    let keep = max 0 (min keep (tests t)) in
    float_of_int (n_at t keep) /. float_of_int t.total_faults
  end

let tests_for_coverage t ~target =
  let need = target *. float_of_int t.total_faults in
  let rec go i =
    if i > tests t then None
    else if float_of_int (n_at t i) >= need -. 1e-9 then Some i
    else go (i + 1)
  in
  go 0
