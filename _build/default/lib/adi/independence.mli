(** The fault-ordering baseline of COMPACTEST (the paper's reference
    [2]): faults are grouped by fanout-free region (FFR), a maximal set
    of pairwise {e independent} faults is built per region, and faults
    in larger independent sets are targeted first — they are the faults
    whose tests are provably all necessary.

    Independence here is approximated from the same random vector set
    the ADI uses: two faults are treated as independent when their
    detection sets over [U] are disjoint (no vector detects both).
    This under-approximates true independence on faults [U] misses, but
    needs no extra machinery and errs conservatively; DESIGN.md lists
    it as part of the baseline substitution. *)

val ffr_roots : Circuit.t -> int array
(** Per node, the root of its fanout-free region: the first node
    reached by following single-fanout edges forward (a node with
    multiple fanouts, with none, or observed as a primary output is its
    own root). *)

val region_of_fault : Circuit.t -> int array -> Fault.t -> int
(** The FFR a fault belongs to: branch faults live in the consuming
    gate's region, stem faults in their node's region. *)

val order : Adi_index.t -> int array
(** The [Findep] permutation: faults of larger per-region independent
    sets first (ties towards smaller fault index); faults not in any
    independent set follow in original order. *)
