module Bitvec = Util.Bitvec
module Heap = Util.Heap

type kind = Orig | Incr0 | Decr | Decr0 | Dynm | Dynm0

let all = [ Orig; Incr0; Decr; Decr0; Dynm; Dynm0 ]

let to_string = function
  | Orig -> "orig"
  | Incr0 -> "incr0"
  | Decr -> "decr"
  | Decr0 -> "0decr"
  | Dynm -> "dynm"
  | Dynm0 -> "0dynm"

let of_string s =
  match String.lowercase_ascii s with
  | "orig" -> Some Orig
  | "incr0" -> Some Incr0
  | "decr" -> Some Decr
  | "0decr" | "decr0" -> Some Decr0
  | "dynm" -> Some Dynm
  | "0dynm" | "dynm0" -> Some Dynm0
  | _ -> None

let split_zero (t : Adi_index.t) =
  let zeros = ref [] and detected = ref [] in
  for fi = Fault_list.count t.fault_list - 1 downto 0 do
    if t.adi.(fi) = 0 then zeros := fi :: !zeros else detected := fi :: !detected
  done;
  (!zeros, !detected)

(* Stable sort of detected faults by ADI; [dir] +1 = decreasing. *)
let sort_by_adi (t : Adi_index.t) dir detected =
  List.stable_sort
    (fun a b ->
      let c = compare t.adi.(b) t.adi.(a) * dir in
      if c <> 0 then c else compare a b)
    detected

(* The dynamic procedure: greedily extract the max-ADI fault, then
   retire it from every ndet(u) count it participates in.  Lazy
   deletion is sound because ndet only decreases. *)
let dynamic (t : Adi_index.t) detected =
  let ndet = Array.copy t.ndet in
  let current_adi fi =
    let m = ref max_int in
    Bitvec.iter_set t.dsets.(fi) (fun u -> if ndet.(u) < !m then m := ndet.(u));
    if !m = max_int then 0 else !m
  in
  let heap = Heap.create () in
  List.iter (fun fi -> Heap.push heap ~key:t.adi.(fi) fi) detected;
  let placed = Array.make (Fault_list.count t.fault_list) false in
  let out = ref [] in
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (key, fi) ->
        if not placed.(fi) then begin
          let cur = current_adi fi in
          if cur < key then Heap.push heap ~key:cur fi
          else begin
            placed.(fi) <- true;
            out := fi :: !out;
            Bitvec.iter_set t.dsets.(fi) (fun u -> ndet.(u) <- ndet.(u) - 1)
          end
        end;
        drain ()
  in
  drain ();
  List.rev !out

let order kind (t : Adi_index.t) =
  let zeros, detected = split_zero t in
  let seq =
    match kind with
    | Orig -> List.init (Fault_list.count t.fault_list) Fun.id
    | Incr0 -> sort_by_adi t (-1) detected @ zeros
    | Decr -> sort_by_adi t 1 detected @ zeros
    | Decr0 -> zeros @ sort_by_adi t 1 detected
    | Dynm -> dynamic t detected @ zeros
    | Dynm0 -> zeros @ dynamic t detected
  in
  Array.of_list seq

let dynamic_reference ~zero_first (t : Adi_index.t) =
  let zeros, detected = split_zero t in
  let ndet = Array.copy t.ndet in
  let current_adi fi =
    let m = ref max_int in
    Bitvec.iter_set t.dsets.(fi) (fun u -> if ndet.(u) < !m then m := ndet.(u));
    if !m = max_int then 0 else !m
  in
  let remaining = ref detected and out = ref [] in
  while !remaining <> [] do
    let best =
      List.fold_left
        (fun acc fi ->
          let a = current_adi fi in
          match acc with Some (ba, _) when ba >= a -> acc | _ -> Some (a, fi))
        None !remaining
    in
    match best with
    | None -> assert false
    | Some (_, fi) ->
        out := fi :: !out;
        remaining := List.filter (fun g -> g <> fi) !remaining;
        Bitvec.iter_set t.dsets.(fi) (fun u -> ndet.(u) <- ndet.(u) - 1)
  done;
  let dyn = List.rev !out in
  Array.of_list (if zero_first then zeros @ dyn else dyn @ zeros)
