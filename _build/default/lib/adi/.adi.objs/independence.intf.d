lib/adi/independence.mli: Adi_index Circuit Fault
