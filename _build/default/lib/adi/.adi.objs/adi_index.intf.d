lib/adi/adi_index.mli: Fault_list Patterns Util
