lib/adi/ordering.mli: Adi_index
