lib/adi/adi_index.ml: Array Circuit Fault_list Faultsim Patterns Util
