lib/adi/independence.ml: Adi_index Array Circuit Fault Fault_list Hashtbl List Option Patterns Util
