lib/adi/pipeline.ml: Adi_index Circuit Collapse Engine Fault_list Ordering Patterns Scan Util
