lib/adi/pipeline.mli: Adi_index Circuit Collapse Engine Fault_list Ordering
