lib/adi/ordering.ml: Adi_index Array Fault_list Fun List String Util
