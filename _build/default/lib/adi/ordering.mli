(** The six fault orders of Section 3.

    Every order is a permutation of fault indices; the engine targets
    faults in that sequence.  Ties always break towards the smaller
    fault index (the paper leaves tie-breaking unspecified; this makes
    every order deterministic). *)

type kind =
  | Orig  (** original (fault-list) order — the baseline *)
  | Incr0  (** increasing ADI, zero-ADI faults last — the deliberately bad order *)
  | Decr  (** static decreasing ADI, zero-ADI faults last *)
  | Decr0  (** static decreasing ADI, zero-ADI faults first *)
  | Dynm  (** dynamic decreasing ADI, zero-ADI faults last *)
  | Dynm0  (** dynamic decreasing ADI, zero-ADI faults first *)

val all : kind list
val to_string : kind -> string
val of_string : string -> kind option

val order : kind -> Adi_index.t -> int array
(** Compute the permutation.

    The dynamic orders replay the paper's procedure: pick the remaining
    fault with the highest current ADI, append it, decrement [ndet(u)]
    for every [u] in [D(f)] (the fault would be dropped after being
    targeted), and let the remaining ADIs decay accordingly.  Implemented
    with a lazy-deletion max-heap — valid because [ndet] only decreases,
    hence ADIs only decrease. *)

val dynamic_reference : zero_first:bool -> Adi_index.t -> int array
(** O(n^2 |U|) literal transcription of the paper's dynamic procedure,
    used to validate the heap implementation in tests. *)
