let bad k n =
  invalid_arg (Printf.sprintf "Logic_word.eval: %s with %d fanins" (Gate.to_string k) n)

let eval k vs =
  let n = Array.length vs in
  if not (Gate.arity_ok k n) then bad k n;
  let fold f init = Array.fold_left f init vs in
  match k with
  | Gate.Const0 -> 0L
  | Gate.Const1 -> -1L
  | Gate.Input -> invalid_arg "Logic_word.eval: primary input has no gate function"
  | Gate.Buf | Gate.Dff -> vs.(0)
  | Gate.Not -> Int64.lognot vs.(0)
  | Gate.And -> fold Int64.logand (-1L)
  | Gate.Nand -> Int64.lognot (fold Int64.logand (-1L))
  | Gate.Or -> fold Int64.logor 0L
  | Gate.Nor -> Int64.lognot (fold Int64.logor 0L)
  | Gate.Xor -> fold Int64.logxor 0L
  | Gate.Xnor -> Int64.lognot (fold Int64.logxor 0L)

let eval_fanins k ~values fanins =
  let n = Array.length fanins in
  if not (Gate.arity_ok k n) then bad k n;
  let fold f init =
    let acc = ref init in
    for i = 0 to n - 1 do
      acc := f !acc values.(fanins.(i))
    done;
    !acc
  in
  match k with
  | Gate.Const0 -> 0L
  | Gate.Const1 -> -1L
  | Gate.Input -> invalid_arg "Logic_word.eval_fanins: primary input has no gate function"
  | Gate.Buf | Gate.Dff -> values.(fanins.(0))
  | Gate.Not -> Int64.lognot values.(fanins.(0))
  | Gate.And -> fold Int64.logand (-1L)
  | Gate.Nand -> Int64.lognot (fold Int64.logand (-1L))
  | Gate.Or -> fold Int64.logor 0L
  | Gate.Nor -> Int64.lognot (fold Int64.logor 0L)
  | Gate.Xor -> fold Int64.logxor 0L
  | Gate.Xnor -> Int64.lognot (fold Int64.logxor 0L)
