lib/logic/five.ml: Array Format Ternary
