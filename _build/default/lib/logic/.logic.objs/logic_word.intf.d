lib/logic/logic_word.mli: Gate
