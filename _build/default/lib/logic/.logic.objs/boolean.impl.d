lib/logic/boolean.ml: Array Fun Gate Printf
