lib/logic/ternary.mli: Format Gate
