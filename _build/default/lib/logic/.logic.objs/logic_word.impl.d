lib/logic/logic_word.ml: Array Gate Int64 Printf
