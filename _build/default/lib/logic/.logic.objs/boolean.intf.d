lib/logic/boolean.mli: Gate
