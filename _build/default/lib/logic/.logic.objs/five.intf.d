lib/logic/five.mli: Format Gate Ternary
