lib/logic/ternary.ml: Array Format Gate Printf
