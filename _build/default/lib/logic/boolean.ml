let eval_array k vs =
  let n = Array.length vs in
  if not (Gate.arity_ok k n) then
    invalid_arg
      (Printf.sprintf "Boolean.eval: %s with %d fanins" (Gate.to_string k) n);
  let all_true () = Array.for_all Fun.id vs in
  let any_true () = Array.exists Fun.id vs in
  let parity () = Array.fold_left (fun acc v -> if v then not acc else acc) false vs in
  match k with
  | Gate.Const0 -> false
  | Gate.Const1 -> true
  | Gate.Input -> invalid_arg "Boolean.eval: primary input has no gate function"
  | Gate.Buf | Gate.Dff -> vs.(0)
  | Gate.Not -> not vs.(0)
  | Gate.And -> all_true ()
  | Gate.Nand -> not (all_true ())
  | Gate.Or -> any_true ()
  | Gate.Nor -> not (any_true ())
  | Gate.Xor -> parity ()
  | Gate.Xnor -> not (parity ())

let eval k vs = eval_array k (Array.of_list vs)
