(** Roth's five-valued D-calculus for test generation.

    A five-valued signal tracks the good machine and the faulty machine
    simultaneously:

    - [Zero]/[One] — same binary value in both machines;
    - [D] — 1 in the good machine, 0 in the faulty machine;
    - [Dbar] — 0 in the good machine, 1 in the faulty machine;
    - [X] — unassigned in at least one machine.

    PODEM drives a [D]/[Dbar] from the fault site to a primary output
    through these values. *)

type t = Zero | One | D | Dbar | X

val equal : t -> t -> bool
val inv : t -> t

val of_pair : Ternary.t * Ternary.t -> t
(** [(good, faulty)] to five-valued; any X component yields {!X}. *)

val to_pair : t -> Ternary.t * Ternary.t
(** Five-valued to [(good, faulty)]. *)

val good : t -> Ternary.t
val faulty : t -> Ternary.t

val is_error : t -> bool
(** [D] or [Dbar] — a fault effect is present. *)

val eval : Gate.kind -> t list -> t
(** Gate function, computed component-wise on the good/faulty pair with
    {!Ternary.eval}. *)

val eval_array : Gate.kind -> t array -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
