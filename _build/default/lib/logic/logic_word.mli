(** 64-pattern bit-parallel gate semantics.

    Each [int64] word carries one logic value per pattern in its 64 bit
    lanes; applying a gate to words applies it to all 64 patterns at
    once.  This is the workhorse of both good-circuit and fault
    simulation. *)

val eval : Gate.kind -> int64 array -> int64
(** Word-level counterpart of {!Boolean.eval_array}.
    @raise Invalid_argument on arity violations. *)

val eval_fanins : Gate.kind -> values:int64 array -> int array -> int64
(** [eval_fanins k ~values fanins] applies [k] to
    [values.(fanins.(0)), values.(fanins.(1)), ...] without building an
    intermediate array — the simulator inner loop. *)
