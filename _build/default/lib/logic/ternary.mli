(** Three-valued logic (0, 1, X).

    Used wherever a signal may be unassigned: PODEM's implication pass
    and the test cubes it produces. *)

type t = Zero | One | X

val of_bool : bool -> t
val to_bool : t -> bool option
(** [None] for {!X}. *)

val equal : t -> t -> bool
val inv : t -> t

val eval : Gate.kind -> t list -> t
(** Pessimistic (standard) three-valued gate function: a controlling
    value decides the output even among Xs; otherwise any X fanin makes
    the output X. *)

val eval_array : Gate.kind -> t array -> t

val to_char : t -> char
(** ['0'], ['1'] or ['x']. *)

val of_char : char -> t option
val pp : Format.formatter -> t -> unit
