type t = Zero | One | D | Dbar | X

let equal (a : t) b = a = b
let inv = function Zero -> One | One -> Zero | D -> Dbar | Dbar -> D | X -> X

let of_pair (g, f) =
  match ((g : Ternary.t), (f : Ternary.t)) with
  | Ternary.X, _ | _, Ternary.X -> X
  | Ternary.Zero, Ternary.Zero -> Zero
  | Ternary.One, Ternary.One -> One
  | Ternary.One, Ternary.Zero -> D
  | Ternary.Zero, Ternary.One -> Dbar

let to_pair = function
  | Zero -> (Ternary.Zero, Ternary.Zero)
  | One -> (Ternary.One, Ternary.One)
  | D -> (Ternary.One, Ternary.Zero)
  | Dbar -> (Ternary.Zero, Ternary.One)
  | X -> (Ternary.X, Ternary.X)

let good v = fst (to_pair v)
let faulty v = snd (to_pair v)
let is_error = function D | Dbar -> true | Zero | One | X -> false

let eval_array k vs =
  let gs = Array.map good vs and fs = Array.map faulty vs in
  of_pair (Ternary.eval_array k gs, Ternary.eval_array k fs)

let eval k vs = eval_array k (Array.of_list vs)

let to_string = function
  | Zero -> "0"
  | One -> "1"
  | D -> "D"
  | Dbar -> "D'"
  | X -> "x"

let pp ppf v = Format.pp_print_string ppf (to_string v)
