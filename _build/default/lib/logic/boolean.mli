(** Scalar two-valued gate semantics — the reference model.

    Every other evaluator in the library (bit-parallel words, ternary,
    five-valued) must agree with this one on binary inputs; the test
    suite checks that by property testing. *)

val eval : Gate.kind -> bool list -> bool
(** [eval k vs] applies gate kind [k] to fanin values [vs].  AND/OR
    families fold; XOR/XNOR are n-ary parity; [Buf]/[Dff] are identity
    (a DFF evaluated combinationally passes its data input through).
    @raise Invalid_argument on an arity violation. *)

val eval_array : Gate.kind -> bool array -> bool
