type t = Zero | One | X

let of_bool b = if b then One else Zero
let to_bool = function Zero -> Some false | One -> Some true | X -> None
let equal (a : t) b = a = b
let inv = function Zero -> One | One -> Zero | X -> X

let and2 a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | _ -> X

let or2 a b =
  match (a, b) with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | _ -> X

let xor2 a b =
  match (a, b) with
  | X, _ | _, X -> X
  | One, One | Zero, Zero -> Zero
  | _ -> One

let eval_array k vs =
  let n = Array.length vs in
  if not (Gate.arity_ok k n) then
    invalid_arg (Printf.sprintf "Ternary.eval: %s with %d fanins" (Gate.to_string k) n);
  let fold f init = Array.fold_left f init vs in
  match k with
  | Gate.Const0 -> Zero
  | Gate.Const1 -> One
  | Gate.Input -> invalid_arg "Ternary.eval: primary input has no gate function"
  | Gate.Buf | Gate.Dff -> vs.(0)
  | Gate.Not -> inv vs.(0)
  | Gate.And -> fold and2 One
  | Gate.Nand -> inv (fold and2 One)
  | Gate.Or -> fold or2 Zero
  | Gate.Nor -> inv (fold or2 Zero)
  | Gate.Xor -> fold xor2 Zero
  | Gate.Xnor -> inv (fold xor2 Zero)

let eval k vs = eval_array k (Array.of_list vs)

let to_char = function Zero -> '0' | One -> '1' | X -> 'x'

let of_char = function
  | '0' -> Some Zero
  | '1' -> Some One
  | 'x' | 'X' -> Some X
  | _ -> None

let pp ppf t = Format.pp_print_char ppf (to_char t)
