type series = { marker : char; points : (float * float) array; label : string }

let render ?(width = 72) ?(height = 24) ~x_label ~y_label series_list =
  let all = List.concat_map (fun s -> Array.to_list s.points) series_list in
  match all with
  | [] -> "(empty plot)\n"
  | (x0, y0) :: rest ->
      let xmin, xmax, ymin, ymax =
        List.fold_left
          (fun (a, b, c, d) (x, y) -> (min a x, max b x, min c y, max d y))
          (x0, x0, y0, y0) rest
      in
      let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
      let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
      let grid = Array.make_matrix height width ' ' in
      let place { marker; points; _ } =
        Array.iter
          (fun (x, y) ->
            let cx = int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1)) in
            let cy = int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1)) in
            grid.(height - 1 - cy).(cx) <- marker)
          points
      in
      List.iter place series_list;
      let buf = Buffer.create (width * height) in
      Buffer.add_string buf (Printf.sprintf "%s\n" y_label);
      Array.iteri
        (fun r line ->
          let tag =
            if r = 0 then Printf.sprintf "%6.1f |" ymax
            else if r = height - 1 then Printf.sprintf "%6.1f |" ymin
            else "       |"
          in
          Buffer.add_string buf tag;
          Buffer.add_string buf (String.init width (fun c -> line.(c)));
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf ("       +" ^ String.make width '-' ^ "\n");
      Buffer.add_string buf
        (Printf.sprintf "        %-8.1f%*s%8.1f   (%s)\n" xmin (width - 16) "" xmax x_label);
      List.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf "        %c - %s\n" s.marker s.label))
        series_list;
      Buffer.contents buf
