(** ASCII scatter plots.

    Figure 1 of the paper plots fault coverage against test count for
    three fault orders, using a distinct marker character per series.
    This module reproduces that presentation on a character grid. *)

type series = { marker : char; points : (float * float) array; label : string }

val render :
  ?width:int ->
  ?height:int ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** Render series onto a [width]x[height] grid (defaults 72x24) with
    axes labelled as percentages of the data ranges.  When two series
    collide on a cell the later series in the list wins, matching the
    paper's overdrawn markers. *)
