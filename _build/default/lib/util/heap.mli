(** Binary max-heap over integer-keyed elements.

    Used by the dynamic fault-ordering procedures ([Fdynm], [F0dynm]):
    keys (accidental detection indices) only ever decrease, so the heap
    supports the classic lazy-deletion discipline — push stale entries
    freely and filter on pop.  Ties are broken towards the smaller
    element payload so orderings are deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
(** Number of stored entries (including stale duplicates pushed by the
    lazy-deletion discipline). *)

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> 'a -> unit
(** Insert an entry.  O(log n). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the max-key entry; among equal keys the entry
    with the smaller payload (polymorphic compare) wins.  O(log n). *)

val peek : 'a t -> (int * 'a) option
