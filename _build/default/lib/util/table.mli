(** Plain-text table rendering for experiment reports.

    All paper tables (1, 4, 5, 6, 7) are re-emitted in this format so
    the bench output can be diffed against EXPERIMENTS.md. *)

type align = Left | Right

type t

val create : (string * align) list -> t
(** [create headers] starts a table with the given column headers and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Append a row.  @raise Invalid_argument on column-count mismatch. *)

val add_rule : t -> unit
(** Append a horizontal rule (drawn as dashes). *)

val render : t -> string
(** Render with aligned columns, a rule under the header. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

(** Convenience formatters. *)

val fmt_float : int -> float -> string
(** [fmt_float d x] prints [x] with [d] decimals. *)

val fmt_ratio : float -> string
(** Three-decimal ratio, the paper's Table 6/7 style. *)
