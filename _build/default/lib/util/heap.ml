type 'a t = { mutable size : int; mutable keys : int array; mutable data : 'a array }

let create () = { size = 0; keys = [||]; data = [||] }

let length t = t.size
let is_empty t = t.size = 0

(* Max-heap order: higher key first; ties -> smaller payload first. *)
let above t i j =
  t.keys.(i) > t.keys.(j)
  || (t.keys.(i) = t.keys.(j) && compare t.data.(i) t.data.(j) < 0)

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let d = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- d

let grow t witness =
  let cap = max 8 (2 * Array.length t.keys) in
  let keys = Array.make cap 0 and data = Array.make cap witness in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.data 0 data 0 t.size;
  t.keys <- keys;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if above t i p then begin
      swap t i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.size && above t l !best then best := l;
  if r < t.size && above t r !best then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let push t ~key v =
  if t.size = Array.length t.keys then grow t v;
  t.keys.(t.size) <- key;
  t.data.(t.size) <- v;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let k = t.keys.(0) and v = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (k, v)
  end

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.data.(0))
