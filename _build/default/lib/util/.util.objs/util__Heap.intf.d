lib/util/heap.mli:
