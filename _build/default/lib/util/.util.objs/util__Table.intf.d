lib/util/table.mli:
