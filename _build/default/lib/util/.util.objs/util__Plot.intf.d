lib/util/plot.mli:
