lib/util/rng.mli:
