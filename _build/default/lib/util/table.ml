type align = Left | Right

type row = Cells of string list | Rule

type t = { headers : string list; aligns : align array; mutable rows : row list }

let create cols =
  { headers = List.map fst cols; aligns = Array.of_list (List.map snd cols); rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: column count mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Rule -> ()) rows;
  let buf = Buffer.create 256 in
  let pad i s =
    let w = widths.(i) in
    let n = w - String.length s in
    match t.aligns.(i) with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_char buf '\n'
  in
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  emit_cells t.headers;
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Cells c -> emit_cells c
      | Rule ->
          Buffer.add_string buf (String.make total '-');
          Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float d x = Printf.sprintf "%.*f" d x
let fmt_ratio x = Printf.sprintf "%.3f" x
