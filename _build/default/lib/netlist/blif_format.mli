(** Reader and writer for the Berkeley Logic Interchange Format (BLIF).

    The subset covering combinational and full-scan-style sequential
    netlists:

    {v
    .model adder
    .inputs a b cin
    .outputs sum cout
    .names a b t      # single-output PLA cover: rows of
    11 1              # input-pattern output-value
    .names t cin sum
    10 1
    01 1
    .latch d q 0      # optional: D flip-flop (reset value ignored)
    .end
    v}

    Parsing turns each [.names] cover into AND/OR/NOT logic (shared
    input inverters per cover); writing emits each gate as a one-gate
    cover, so BLIF round-trips are functionally — not structurally —
    identical.  [.names] covers may use on-set rows (output 1) or
    off-set rows (output 0), never both. *)

exception Parse_error of int * string

val parse_string : ?title:string -> string -> Circuit.t
val parse_file : string -> Circuit.t
val to_string : Circuit.t -> string
val write_file : string -> Circuit.t -> unit
