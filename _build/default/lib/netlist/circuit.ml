type t = {
  title : string;
  kinds : Gate.kind array;
  names : string array;
  fanins : int array array;
  fanouts : int array array;
  inputs : int array;
  outputs : int array;
  output_set : bool array;
  by_name : (string, int) Hashtbl.t;
  topo : int array;
  levels : int array;
}

let node_count t = Array.length t.kinds
let kind t i = t.kinds.(i)
let name t i = t.names.(i)
let fanins t i = t.fanins.(i)
let fanouts t i = t.fanouts.(i)
let fanout_count t i = Array.length t.fanouts.(i)
let inputs t = t.inputs
let outputs t = t.outputs
let is_output t i = t.output_set.(i)
let find t n = Hashtbl.find_opt t.by_name n

let find_exn t n =
  match find t n with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Circuit.find_exn: no node named %S" n)

let gate_count t =
  let c = ref 0 in
  Array.iter
    (fun k -> match k with Gate.Input | Gate.Const0 | Gate.Const1 -> () | _ -> incr c)
    t.kinds;
  !c

let pin_count t = Array.fold_left (fun acc f -> acc + Array.length f) 0 t.fanins
let has_state t = Array.exists (fun k -> k = Gate.Dff) t.kinds
let title t = t.title

let iter_nodes t f =
  for i = 0 to node_count t - 1 do
    f i
  done

module Builder = struct
  type t = {
    b_title : string;
    mutable b_kinds : Gate.kind list;
    mutable b_names : string list;
    mutable b_fanins : int array list;
    mutable b_count : int;
    b_by_name : (string, int) Hashtbl.t;
    mutable b_inputs : int list;
    mutable b_outputs : int list;
    b_output_set : (int, unit) Hashtbl.t;
  }

  let create ?(title = "circuit") () =
    {
      b_title = title;
      b_kinds = [];
      b_names = [];
      b_fanins = [];
      b_count = 0;
      b_by_name = Hashtbl.create 64;
      b_inputs = [];
      b_outputs = [];
      b_output_set = Hashtbl.create 16;
    }

  let node_count b = b.b_count

  let add b k name fanins =
    if Hashtbl.mem b.b_by_name name then
      invalid_arg (Printf.sprintf "Circuit.Builder: duplicate node name %S" name);
    if not (Gate.arity_ok k (Array.length fanins)) then
      invalid_arg
        (Printf.sprintf "Circuit.Builder: %s gate %S cannot have %d fanins"
           (Gate.to_string k) name (Array.length fanins));
    Array.iter
      (fun f ->
        (* -1 is the "connect later" placeholder used by [dff]. *)
        if (f < 0 || f >= b.b_count) && not (k = Gate.Dff && f = -1) then
          invalid_arg (Printf.sprintf "Circuit.Builder: dangling fanin id %d for %S" f name))
      fanins;
    let id = b.b_count in
    b.b_kinds <- k :: b.b_kinds;
    b.b_names <- name :: b.b_names;
    b.b_fanins <- fanins :: b.b_fanins;
    b.b_count <- id + 1;
    Hashtbl.add b.b_by_name name id;
    id

  let input b name =
    let id = add b Gate.Input name [||] in
    b.b_inputs <- id :: b.b_inputs;
    id

  let const b name v = add b (if v then Gate.Const1 else Gate.Const0) name [||]

  let gate b k name fanins =
    (match k with
    | Gate.Input -> invalid_arg "Circuit.Builder.gate: use Builder.input for primary inputs"
    | _ -> ());
    add b k name (Array.of_list fanins)

  let mark_output b id =
    if id < 0 || id >= b.b_count then invalid_arg "Circuit.Builder.mark_output: bad id";
    if not (Hashtbl.mem b.b_output_set id) then begin
      Hashtbl.add b.b_output_set id ();
      b.b_outputs <- id :: b.b_outputs
    end

  (* DFFs may close feedback loops, so their fanin can be patched after
     creation; -1 marks "not yet connected". *)
  let dff b name = add b Gate.Dff name [| -1 |]

  let connect_dff b id ~fanin =
    if id < 0 || id >= b.b_count then invalid_arg "Circuit.Builder.connect_dff: bad id";
    if fanin < 0 || fanin >= b.b_count then
      invalid_arg "Circuit.Builder.connect_dff: dangling fanin";
    let rec nth_fanins l n = match l with
      | [] -> invalid_arg "Circuit.Builder.connect_dff: bad id"
      | f :: rest -> if n = 0 then f else nth_fanins rest (n - 1)
    in
    (* b_fanins is stored most-recent-first. *)
    let arr = nth_fanins b.b_fanins (b.b_count - 1 - id) in
    let rec kth l n = match l with
      | [] -> invalid_arg "Circuit.Builder.connect_dff: bad id"
      | k :: rest -> if n = 0 then k else kth rest (n - 1)
    in
    if kth b.b_kinds (b.b_count - 1 - id) <> Gate.Dff then
      invalid_arg "Circuit.Builder.connect_dff: node is not a DFF";
    arr.(0) <- fanin

  (* Kahn topological sort over combinational edges; DFF fanin edges are
     next-state edges and do not order the DFF after its fanin. *)
  let topo_sort kinds fanins =
    let n = Array.length kinds in
    let indeg = Array.make n 0 in
    let comb_fanins i = if kinds.(i) = Gate.Dff then [||] else fanins.(i) in
    for i = 0 to n - 1 do
      indeg.(i) <- Array.length (comb_fanins i)
    done;
    let succs = Array.make n [] in
    for i = 0 to n - 1 do
      Array.iter (fun f -> succs.(f) <- i :: succs.(f)) (comb_fanins i)
    done;
    let order = Array.make n 0 in
    let filled = ref 0 in
    let queue = Queue.create () in
    for i = 0 to n - 1 do
      if indeg.(i) = 0 then Queue.add i queue
    done;
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      order.(!filled) <- i;
      incr filled;
      List.iter
        (fun s ->
          indeg.(s) <- indeg.(s) - 1;
          if indeg.(s) = 0 then Queue.add s queue)
        (List.rev succs.(i))
    done;
    if !filled <> n then invalid_arg "Circuit.Builder.finish: combinational cycle detected";
    order

  let finish b =
    if b.b_outputs = [] then invalid_arg "Circuit.Builder.finish: no outputs marked";
    let n = b.b_count in
    let kinds = Array.of_list (List.rev b.b_kinds) in
    let names = Array.of_list (List.rev b.b_names) in
    let fanins = Array.of_list (List.rev b.b_fanins) in
    Array.iteri
      (fun i fi ->
        Array.iter
          (fun f ->
            if f < 0 then
              invalid_arg
                (Printf.sprintf "Circuit.Builder.finish: DFF %S was never connected"
                   names.(i)))
          fi)
      fanins;
    let topo = topo_sort kinds fanins in
    let levels = Array.make n 0 in
    Array.iter
      (fun i ->
        if kinds.(i) <> Gate.Dff && Array.length fanins.(i) > 0 then
          levels.(i) <- 1 + Array.fold_left (fun m f -> max m levels.(f)) 0 fanins.(i))
      topo;
    (* Fanouts: distinct consumers, increasing id. *)
    let fanout_lists = Array.make n [] in
    for i = n - 1 downto 0 do
      let seen = Hashtbl.create 4 in
      Array.iter
        (fun f ->
          if not (Hashtbl.mem seen f) then begin
            Hashtbl.add seen f ();
            fanout_lists.(f) <- i :: fanout_lists.(f)
          end)
        fanins.(i)
    done;
    let fanouts = Array.map Array.of_list fanout_lists in
    let output_set = Array.make n false in
    List.iter (fun o -> output_set.(o) <- true) b.b_outputs;
    {
      title = b.b_title;
      kinds;
      names;
      fanins;
      fanouts;
      inputs = Array.of_list (List.rev b.b_inputs);
      outputs = Array.of_list (List.rev b.b_outputs);
      output_set;
      by_name = Hashtbl.copy b.b_by_name;
      topo;
      levels;
    }
end

let topological_order t = t.topo
let level t i = t.levels.(i)
let depth t = Array.fold_left max 0 t.levels

let transitive_fanout t src =
  let reached = Array.make (node_count t) false in
  reached.(src) <- true;
  let acc = ref [] in
  Array.iter
    (fun i ->
      if (not reached.(i)) && Array.exists (fun f -> reached.(f)) t.fanins.(i) then begin
        reached.(i) <- true;
        acc := i :: !acc
      end)
    t.topo;
  Array.of_list (List.rev !acc)

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d PIs, %d POs, %d gates, depth %d" t.title
    (Array.length t.inputs) (Array.length t.outputs) (gate_count t) (depth t)
