(** Immutable gate-level netlists.

    A circuit is a set of nodes identified by dense integer ids.  Each
    node has a {!Gate.kind}, a name, and an ordered fanin list; fanout
    lists are derived at freeze time.  Primary outputs reference driver
    nodes (there are no separate output pads), so one node can be both
    an internal signal and an observed output, as in the [.bench]
    format.

    Construct circuits through {!Builder}; a frozen circuit is never
    mutated. *)

type t

(** {1 Accessors} *)

val node_count : t -> int
val kind : t -> int -> Gate.kind
val name : t -> int -> string
val fanins : t -> int -> int array
(** Ordered fanin node ids.  Do not mutate. *)

val fanouts : t -> int -> int array
(** Node ids that list this node among their fanins, in increasing id
    order; a consumer appears once per distinct consumer (a gate using
    the same signal on two pins is still one fanout entry).  Do not
    mutate. *)

val fanout_count : t -> int -> int
val inputs : t -> int array
(** Primary-input node ids in declaration order.  Do not mutate. *)

val outputs : t -> int array
(** Primary-output driver node ids in declaration order.  A node id may
    appear at most once.  Do not mutate. *)

val is_output : t -> int -> bool
val find : t -> string -> int option
(** Look a node up by name. *)

val find_exn : t -> string -> int

val gate_count : t -> int
(** Number of logic nodes, i.e. nodes that are not primary inputs or
    constants (the convention ISCAS statistics use). *)

val pin_count : t -> int
(** Total number of gate input pins. *)

val has_state : t -> bool
(** Whether any {!Gate.Dff} node is present. *)

val title : t -> string
(** Circuit name (for reports). *)

val iter_nodes : t -> (int -> unit) -> unit

(** {1 Building} *)

module Builder : sig
  type circuit := t
  type t

  val create : ?title:string -> unit -> t

  val input : t -> string -> int
  (** Declare a primary input.  @raise Invalid_argument on duplicate
      names. *)

  val const : t -> string -> bool -> int
  (** Constant-0 or constant-1 node. *)

  val gate : t -> Gate.kind -> string -> int list -> int
  (** [gate b kind name fanins] adds a logic node.  @raise
      Invalid_argument on duplicate name, bad arity, or dangling fanin
      id. *)

  val mark_output : t -> int -> unit
  (** Declare a node to be a primary output.  Marking the same node
      twice is idempotent. *)

  val dff : t -> string -> int
  (** Add a D flip-flop whose fanin is not yet known (feedback loops in
      sequential netlists require this).  The fanin must be supplied
      with {!connect_dff} before {!finish}. *)

  val connect_dff : t -> int -> fanin:int -> unit
  (** Set the data fanin of a flip-flop created by {!dff}.  @raise
      Invalid_argument if the node is not an unconnected DFF or the
      fanin id is dangling at {!finish} time. *)

  val node_count : t -> int

  val finish : t -> circuit
  (** Freeze.  @raise Invalid_argument if no outputs are marked or the
      combinational part contains a cycle (DFFs break cycles). *)
end

(** {1 Derived views} *)

val topological_order : t -> int array
(** Node ids such that every node appears after all its fanins, with
    {!Gate.Dff} nodes treated as sources (their fanin edge is a
    next-state edge, not a combinational dependency).  Computed at
    freeze time; do not mutate. *)

val level : t -> int -> int
(** Logic depth: 0 for PIs/constants/DFF outputs, else 1 + max fanin
    level. *)

val depth : t -> int
(** Maximum level over all nodes. *)

val transitive_fanout : t -> int -> int array
(** Node ids reachable from the given node through fanout edges
    (excluding the node itself), in topological order.  Computed on
    demand. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: name, #PI, #PO, #gates, depth. *)
