lib/netlist/validate.ml: Array Circuit Format Gate List
