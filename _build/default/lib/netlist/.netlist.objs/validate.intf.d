lib/netlist/validate.mli: Circuit Format
