lib/netlist/bench_format.ml: Array Buffer Circuit Filename Fun Gate Hashtbl List Option Printf String Util
