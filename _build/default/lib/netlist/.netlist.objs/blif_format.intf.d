lib/netlist/blif_format.mli: Circuit
