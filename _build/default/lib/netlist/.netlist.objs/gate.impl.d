lib/netlist/gate.ml: Format String
