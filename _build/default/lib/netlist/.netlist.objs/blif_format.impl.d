lib/netlist/blif_format.ml: Array Buffer Circuit Filename Fun Gate Hashtbl List Printf String
