lib/netlist/rewrite.ml: Array Circuit Gate Hashtbl List Option
