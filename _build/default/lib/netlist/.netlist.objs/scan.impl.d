lib/netlist/scan.ml: Array Circuit Gate List
