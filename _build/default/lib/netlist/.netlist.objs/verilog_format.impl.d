lib/netlist/verilog_format.ml: Array Buffer Circuit Fun Gate Hashtbl List Printf String
