lib/netlist/rewrite.mli: Circuit
