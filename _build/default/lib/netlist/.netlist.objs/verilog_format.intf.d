lib/netlist/verilog_format.mli: Circuit
