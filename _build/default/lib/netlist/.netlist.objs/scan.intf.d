lib/netlist/scan.mli: Circuit
