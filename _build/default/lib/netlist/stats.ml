type t = {
  name : string;
  pis : int;
  pos : int;
  gates : int;
  dffs : int;
  pins : int;
  depth : int;
  max_fanout : int;
  kind_histogram : (Gate.kind * int) list;
}

let of_circuit c =
  let hist = Hashtbl.create 13 in
  let dffs = ref 0 and max_fo = ref 0 in
  Circuit.iter_nodes c (fun i ->
      let k = Circuit.kind c i in
      Hashtbl.replace hist k (1 + Option.value ~default:0 (Hashtbl.find_opt hist k));
      if k = Gate.Dff then incr dffs;
      max_fo := max !max_fo (Circuit.fanout_count c i));
  let kind_histogram =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []
    |> List.sort (fun (a, _) (b, _) -> compare (Gate.to_string a) (Gate.to_string b))
  in
  {
    name = Circuit.title c;
    pis = Array.length (Circuit.inputs c);
    pos = Array.length (Circuit.outputs c);
    gates = Circuit.gate_count c;
    dffs = !dffs;
    pins = Circuit.pin_count c;
    depth = Circuit.depth c;
    max_fanout = !max_fo;
    kind_histogram;
  }

let pp ppf t =
  Format.fprintf ppf "%s: %d PIs, %d POs, %d gates (%d DFFs), %d pins, depth %d, max fanout %d"
    t.name t.pis t.pos t.gates t.dffs t.pins t.depth t.max_fanout;
  Format.fprintf ppf "@ [";
  List.iteri
    (fun i (k, n) ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%s:%d" (Gate.to_string k) n)
    t.kind_histogram;
  Format.fprintf ppf "]"
