type mapping = { ppis : (string * int) array; ppos : (string * int) array }

let is_combinational c = not (Circuit.has_state c)

let combinational c =
  let b = Circuit.Builder.create ~title:(Circuit.title c ^ "_comb") () in
  let n = Circuit.node_count c in
  let ids = Array.make n (-1) in
  (* Original PIs first, in order. *)
  Array.iter (fun i -> ids.(i) <- Circuit.Builder.input b (Circuit.name c i)) (Circuit.inputs c);
  (* DFF outputs become PPIs. *)
  let ppis = ref [] in
  Circuit.iter_nodes c (fun i ->
      if Circuit.kind c i = Gate.Dff then begin
        let id = Circuit.Builder.input b (Circuit.name c i ^ "__ppi") in
        ids.(i) <- id;
        ppis := (Circuit.name c i, id) :: !ppis
      end);
  (* Remaining nodes in topological order (DFFs already mapped). *)
  Array.iter
    (fun i ->
      if ids.(i) < 0 then begin
        let k = Circuit.kind c i in
        let fanin_ids = Array.to_list (Array.map (fun f -> ids.(f)) (Circuit.fanins c i)) in
        ids.(i) <-
          (match k with
          | Gate.Input | Gate.Dff -> assert false
          | _ -> Circuit.Builder.gate b k (Circuit.name c i) fanin_ids)
      end)
    (Circuit.topological_order c);
  Array.iter (fun o -> Circuit.Builder.mark_output b ids.(o)) (Circuit.outputs c);
  (* DFF data inputs become PPOs. *)
  let ppos = ref [] in
  Circuit.iter_nodes c (fun i ->
      if Circuit.kind c i = Gate.Dff then begin
        let d = (Circuit.fanins c i).(0) in
        Circuit.Builder.mark_output b ids.(d);
        ppos := (Circuit.name c i, ids.(d)) :: !ppos
      end);
  ( Circuit.Builder.finish b,
    { ppis = Array.of_list (List.rev !ppis); ppos = Array.of_list (List.rev !ppos) } )

type chain = {
  cells : string array;
  scan_in : int;
  scan_enable : int;
  scan_out : int;
}

let insert_chain c =
  if not (Circuit.has_state c) then
    invalid_arg "Scan.insert_chain: circuit has no flip-flops";
  let b = Circuit.Builder.create ~title:(Circuit.title c ^ "_scan") () in
  let n = Circuit.node_count c in
  let ids = Array.make n (-1) in
  Array.iter (fun pi -> ids.(pi) <- Circuit.Builder.input b (Circuit.name c pi)) (Circuit.inputs c);
  let scan_in_id = Circuit.Builder.input b "scan_in" in
  let scan_en_id = Circuit.Builder.input b "scan_enable" in
  let scan_en_n = Circuit.Builder.gate b Gate.Not "scan_enable_n" [ scan_en_id ] in
  (* Flip-flops first (they are sources); data muxes are wired after
     the combinational logic exists. *)
  let dffs = ref [] in
  Circuit.iter_nodes c (fun i ->
      if Circuit.kind c i = Gate.Dff then begin
        ids.(i) <- Circuit.Builder.dff b (Circuit.name c i);
        dffs := i :: !dffs
      end);
  let dffs = Array.of_list (List.rev !dffs) in
  Array.iter
    (fun i ->
      if ids.(i) < 0 then
        match Circuit.kind c i with
        | Gate.Input | Gate.Dff -> ()
        | k ->
            ids.(i) <-
              Circuit.Builder.gate b k (Circuit.name c i)
                (Array.to_list (Array.map (fun f -> ids.(f)) (Circuit.fanins c i))))
    (Circuit.topological_order c);
  (* Stitch: cell 0 shifts from scan_in, cell j from cell j-1. *)
  Array.iteri
    (fun j old_dff ->
      let name = Circuit.name c old_dff in
      let data = ids.((Circuit.fanins c old_dff).(0)) in
      let shift_src = if j = 0 then scan_in_id else ids.(dffs.(j - 1)) in
      let func_path = Circuit.Builder.gate b Gate.And (name ^ "_d") [ scan_en_n; data ] in
      let shift_path = Circuit.Builder.gate b Gate.And (name ^ "_sh") [ scan_en_id; shift_src ] in
      let mux = Circuit.Builder.gate b Gate.Or (name ^ "_mux") [ func_path; shift_path ] in
      Circuit.Builder.connect_dff b ids.(old_dff) ~fanin:mux)
    dffs;
  Array.iter (fun o -> Circuit.Builder.mark_output b ids.(o)) (Circuit.outputs c);
  (* Scan-out: the last cell, observed through a dedicated buffer so it
     is a fresh output position even if the cell was already a PO. *)
  let last_q = ids.(dffs.(Array.length dffs - 1)) in
  let so = Circuit.Builder.gate b Gate.Buf "scan_out" [ last_q ] in
  Circuit.Builder.mark_output b so;
  let circuit = Circuit.Builder.finish b in
  let n_pis = Array.length (Circuit.inputs circuit) in
  ( circuit,
    {
      cells = Array.map (Circuit.name c) dffs;
      scan_in = n_pis - 2;
      scan_enable = n_pis - 1;
      scan_out = Array.length (Circuit.outputs circuit) - 1;
    } )
