(** Full-scan transformation.

    Under full scan, every flip-flop is part of a scan chain, so ATPG
    sees a purely combinational circuit: each flip-flop output becomes a
    pseudo primary input (PPI) and each flip-flop data input becomes a
    pseudo primary output (PPO).  This is exactly the "combinational
    logic of ISCAS-89 benchmarks" the paper evaluates on. *)

type mapping = {
  ppis : (string * int) array;
      (** (flip-flop name, PPI node id in the combinational circuit),
          in original DFF id order. *)
  ppos : (string * int) array;
      (** (flip-flop name, PPO driver node id). *)
}

val combinational : Circuit.t -> Circuit.t * mapping
(** [combinational c] replaces every DFF with a PPI/PPO pair.  PPIs are
    appended after the original PIs (named ["<ff>__ppi"]); PPOs are
    appended after the original POs.  A circuit without DFFs is rebuilt
    unchanged with an empty mapping. *)

val is_combinational : Circuit.t -> bool
(** No DFF nodes present. *)

(** {1 Scan-chain insertion}

    The physical side of full scan: every flip-flop gains a shift path
    so the tester can load and unload the state serially. *)

type chain = {
  cells : string array;
      (** flip-flop names in chain order: [cells.(0)] is fed by the
          scan-in pin, the last cell drives scan-out *)
  scan_in : int;  (** index of the scan-in pin in [Circuit.inputs] *)
  scan_enable : int;  (** index of the scan-enable pin in [Circuit.inputs] *)
  scan_out : int;  (** position of the scan-out in [Circuit.outputs] *)
}

val insert_chain : Circuit.t -> Circuit.t * chain
(** Stitch all flip-flops (in node-id order) into one mux-D scan
    chain: each DFF's data becomes [scan_enable ? previous-cell-Q :
    original-data]; two primary inputs ([scan_in], [scan_enable]) and
    one primary output (scan-out, the last cell's Q) are appended.
    @raise Invalid_argument if the circuit has no flip-flops. *)
