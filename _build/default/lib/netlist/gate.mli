(** Gate kinds of the structural netlist.

    The library models the gate repertoire of the ISCAS-85/89 benchmark
    format: primary inputs, constants, single-input buffers/inverters,
    n-ary AND/NAND/OR/NOR, n-ary parity gates (XOR/XNOR), and D
    flip-flops.  Flip-flops only appear in sequential netlists; the
    full-scan transformation ({!Scan.combinational}) removes them before
    any simulation or test generation. *)

type kind =
  | Input  (** primary input (no fanin) *)
  | Const0  (** constant logic 0 *)
  | Const1  (** constant logic 1 *)
  | Buf  (** non-inverting buffer, arity 1 *)
  | Not  (** inverter, arity 1 *)
  | And
  | Nand
  | Or
  | Nor
  | Xor  (** n-ary odd parity *)
  | Xnor  (** n-ary even parity *)
  | Dff  (** D flip-flop, arity 1; sequential netlists only *)

val to_string : kind -> string
(** Canonical upper-case mnemonic, as used by the [.bench] format. *)

val of_string : string -> kind option
(** Parse a mnemonic, case-insensitively.  Accepts the aliases [BUFF]
    for {!Buf} and [INV] for {!Not}. *)

val arity_ok : kind -> int -> bool
(** [arity_ok k n] says whether a gate of kind [k] may have [n] fanins. *)

val inverting : kind -> bool
(** Whether the gate's output is the complement of the corresponding
    non-inverting kind ([Nand]/[Nor]/[Xnor]/[Not]). *)

val controlling_value : kind -> bool option
(** The fanin value that forces the output regardless of other fanins:
    [Some false] for AND/NAND, [Some true] for OR/NOR, [None]
    otherwise. *)

val equal : kind -> kind -> bool
val pp : Format.formatter -> kind -> unit
