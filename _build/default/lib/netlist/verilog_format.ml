let is_word c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let keywords = [ "input"; "output"; "wire"; "module"; "endmodule"; "assign"; "reg"; "always"; "clk" ]

(* Map every node to a unique legal Verilog identifier. *)
let identifiers c =
  let used = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace used k ()) keywords;
  let sanitise name =
    let base = String.map (fun ch -> if is_word ch then ch else '_') name in
    let base = if base = "" then "n" else base in
    let base = if base.[0] >= '0' && base.[0] <= '9' then "n" ^ base else base in
    if not (Hashtbl.mem used base) then begin
      Hashtbl.replace used base ();
      base
    end
    else begin
      let rec pick i =
        let cand = Printf.sprintf "%s_%d" base i in
        if Hashtbl.mem used cand then pick (i + 1)
        else begin
          Hashtbl.replace used cand ();
          cand
        end
      in
      pick 1
    end
  in
  Array.init (Circuit.node_count c) (fun i -> sanitise (Circuit.name c i))

let to_string c =
  let ids = identifiers c in
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let inputs = Array.to_list (Array.map (fun i -> ids.(i)) (Circuit.inputs c)) in
  let inputs = if Circuit.has_state c then inputs @ [ "clk" ] else inputs in
  (* A node that is both PO and internal signal keeps one name; ports
     list outputs by their node identifiers. *)
  let outputs = Array.to_list (Array.map (fun o -> ids.(o) ^ "_po") (Circuit.outputs c)) in
  let module_name =
    let t = Circuit.title c in
    let t = String.map (fun ch -> if is_word ch then ch else '_') t in
    if t = "" then "circuit" else t
  in
  pr "module %s (%s);\n" module_name (String.concat ", " (inputs @ outputs));
  List.iter (fun i -> pr "  input %s;\n" i) inputs;
  List.iter (fun o -> pr "  output %s;\n" o) outputs;
  (* Wires for every non-input node. *)
  Circuit.iter_nodes c (fun i ->
      match Circuit.kind c i with
      | Gate.Input -> ()
      | Gate.Dff -> pr "  reg %s;\n" ids.(i)
      | _ -> pr "  wire %s;\n" ids.(i));
  Buffer.add_char buf '\n';
  Circuit.iter_nodes c (fun i ->
      let fanin_ids () =
        String.concat ", " (Array.to_list (Array.map (fun f -> ids.(f)) (Circuit.fanins c i)))
      in
      match Circuit.kind c i with
      | Gate.Input -> ()
      | Gate.Const0 -> pr "  assign %s = 1'b0;\n" ids.(i)
      | Gate.Const1 -> pr "  assign %s = 1'b1;\n" ids.(i)
      | Gate.Dff ->
          pr "  always @(posedge clk) %s <= %s;\n" ids.(i) ids.((Circuit.fanins c i).(0))
      | Gate.Buf -> pr "  buf (%s, %s);\n" ids.(i) (fanin_ids ())
      | Gate.Not -> pr "  not (%s, %s);\n" ids.(i) (fanin_ids ())
      | Gate.And -> pr "  and (%s, %s);\n" ids.(i) (fanin_ids ())
      | Gate.Nand -> pr "  nand (%s, %s);\n" ids.(i) (fanin_ids ())
      | Gate.Or -> pr "  or (%s, %s);\n" ids.(i) (fanin_ids ())
      | Gate.Nor -> pr "  nor (%s, %s);\n" ids.(i) (fanin_ids ())
      | Gate.Xor -> pr "  xor (%s, %s);\n" ids.(i) (fanin_ids ())
      | Gate.Xnor -> pr "  xnor (%s, %s);\n" ids.(i) (fanin_ids ()));
  Buffer.add_char buf '\n';
  Array.iter (fun o -> pr "  assign %s_po = %s;\n" ids.(o) ids.(o)) (Circuit.outputs c);
  pr "endmodule\n";
  Buffer.contents buf

let write_file path c =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc (to_string c))
