(** Netlist rewriting: constant substitution and structural
    simplification.

    The redundancy-removal loop replaces lines carrying undetectable
    stuck-at faults with constants; this module performs the
    substitution and cleans up the consequences — constants are
    propagated, controlled gates collapse, constant fanins of
    AND/OR-family gates are dropped, parity gates absorb constant
    inputs as an inversion, and logic left driving nothing is
    deleted.

    Primary outputs are preserved positionally: an output that
    simplifies to a constant remains as a constant node. *)

type subst =
  | Node_const of int * bool  (** node's output becomes the constant *)
  | Pin_const of { gate : int; pin : int; value : bool }
      (** one gate input pin is disconnected and tied to the constant *)

val apply : Circuit.t -> subst list -> Circuit.t
(** Apply substitutions simultaneously and simplify.  Node names are
    preserved for surviving nodes. *)

val simplify : Circuit.t -> Circuit.t
(** [apply c []] — simplification only. *)
