type subst =
  | Node_const of int * bool
  | Pin_const of { gate : int; pin : int; value : bool }

type signal = Const of bool | Ref of int

module B = Circuit.Builder

(* Prune nodes from which no primary output is reachable (through
   combinational and DFF data edges).  Primary inputs are always
   kept — they are the circuit's interface. *)
let prune_dead c =
  let n = Circuit.node_count c in
  let live = Array.make n false in
  Array.iter (fun o -> live.(o) <- true) (Circuit.outputs c);
  (* DFFs propagate liveness to their data fanin across clock
     boundaries, so iterate to a fixed point. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let topo = Circuit.topological_order c in
    for idx = n - 1 downto 0 do
      let i = topo.(idx) in
      if live.(i) then
        Array.iter
          (fun f ->
            if not live.(f) then begin
              live.(f) <- true;
              changed := true
            end)
          (Circuit.fanins c i)
    done
  done;
  let b = B.create ~title:(Circuit.title c) () in
  let ids = Array.make n (-1) in
  Array.iter (fun pi -> ids.(pi) <- B.input b (Circuit.name c pi)) (Circuit.inputs c);
  let dffs = ref [] in
  Array.iter
    (fun i ->
      if live.(i) && ids.(i) < 0 then
        match Circuit.kind c i with
        | Gate.Input -> ()
        | Gate.Dff ->
            ids.(i) <- B.dff b (Circuit.name c i);
            dffs := i :: !dffs
        | k ->
            ids.(i) <-
              B.gate b k (Circuit.name c i)
                (Array.to_list (Array.map (fun f -> ids.(f)) (Circuit.fanins c i))))
    (Circuit.topological_order c);
  List.iter
    (fun i -> B.connect_dff b ids.(i) ~fanin:ids.((Circuit.fanins c i).(0)))
    !dffs;
  Array.iter (fun o -> B.mark_output b ids.(o)) (Circuit.outputs c);
  B.finish b

let apply c substs =
  let n = Circuit.node_count c in
  let node_const = Array.make n None in
  let pin_consts : (int * int, bool) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (function
      | Node_const (i, v) -> node_const.(i) <- Some v
      | Pin_const { gate; pin; value } -> Hashtbl.replace pin_consts (gate, pin) value)
    substs;
  let b = B.create ~title:(Circuit.title c) () in
  let signals = Array.make n (Const false) in
  let const_ids = [| None; None |] in
  let const_ref v =
    let idx = if v then 1 else 0 in
    match const_ids.(idx) with
    | Some id -> id
    | None ->
        let id = B.const b (if v then "_const1" else "_const0") v in
        const_ids.(idx) <- Some id;
        id
  in
  let materialize = function Const v -> const_ref v | Ref id -> id in
  (* DFFs are sources in the topological order; create them first so
     their consumers can reference them, and connect their data pins at
     the end. *)
  let dff_olds = ref [] in
  Circuit.iter_nodes c (fun i ->
      if Circuit.kind c i = Gate.Dff then begin
        signals.(i) <-
          (match node_const.(i) with
          | Some v -> Const v
          | None ->
              dff_olds := i :: !dff_olds;
              Ref (B.dff b (Circuit.name c i)))
      end);
  let eval_gate i =
    let k = Circuit.kind c i in
    let fanins = Circuit.fanins c i in
    let pin p =
      match Hashtbl.find_opt pin_consts (i, p) with
      | Some v -> Const v
      | None -> signals.(fanins.(p))
    in
    let pins = List.init (Array.length fanins) pin in
    let mk_unary inverted = function
      | Const v -> Const (v <> inverted)
      | Ref id ->
          if inverted then Ref (B.gate b Gate.Not (Circuit.name c i) [ id ])
          else Ref (B.gate b Gate.Buf (Circuit.name c i) [ id ])
    in
    match k with
    | Gate.Input -> signals.(i)
    | Gate.Const0 -> Const false
    | Gate.Const1 -> Const true
    | Gate.Dff -> signals.(i)
    | Gate.Buf -> mk_unary false (List.nth pins 0)
    | Gate.Not -> mk_unary true (List.nth pins 0)
    | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
        let controlling =
          match Gate.controlling_value k with Some v -> v | None -> assert false
        in
        let inverted = Gate.inverting k in
        if List.exists (function Const v -> v = controlling | Ref _ -> false) pins then
          Const (controlling <> inverted)
        else begin
          (* Non-controlling constants drop out; duplicate fanins are
             idempotent for these gates. *)
          let live =
            List.filter_map (function Const _ -> None | Ref id -> Some id) pins
          in
          let live = List.sort_uniq compare live in
          match live with
          | [] -> Const (not controlling <> inverted)
          | [ one ] -> mk_unary inverted (Ref one)
          | many -> Ref (B.gate b k (Circuit.name c i) many)
        end
    | Gate.Xor | Gate.Xnor ->
        let base_flip = Gate.inverting k in
        let flip =
          List.fold_left
            (fun acc -> function Const v -> acc <> v | Ref _ -> acc)
            base_flip pins
        in
        (* Pairs of identical fanins cancel in a parity gate. *)
        let counts = Hashtbl.create 8 in
        List.iter
          (function
            | Const _ -> ()
            | Ref id ->
                Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
          pins;
        let live =
          Hashtbl.fold (fun id cnt acc -> if cnt land 1 = 1 then id :: acc else acc) counts []
          |> List.sort compare
        in
        (match live with
        | [] -> Const flip
        | [ one ] -> mk_unary flip (Ref one)
        | many ->
            let kind = if flip then Gate.Xnor else Gate.Xor in
            Ref (B.gate b kind (Circuit.name c i) many))
  in
  Array.iter
    (fun i ->
      match Circuit.kind c i with
      | Gate.Input ->
          let id = B.input b (Circuit.name c i) in
          signals.(i) <- (match node_const.(i) with Some v -> Const v | None -> Ref id)
      | Gate.Dff -> ()
      | _ ->
          (* Check the substitution before materialising: eval_gate
             would create a node carrying this name, which the
             constant-output path below may need. *)
          signals.(i) <-
            (match node_const.(i) with Some v -> Const v | None -> eval_gate i))
    (Circuit.topological_order c);
  List.iter
    (fun i ->
      let data =
        match Hashtbl.find_opt pin_consts (i, 0) with
        | Some v -> Const v
        | None -> signals.((Circuit.fanins c i).(0))
      in
      B.connect_dff b (materialize signals.(i)) ~fanin:(materialize data))
    !dff_olds;
  (* A primary output that folded to a constant keeps its name via a
     dedicated constant node (the original node was never materialised,
     unless it was a PI, whose name survives — then suffix). *)
  Array.iter
    (fun o ->
      match signals.(o) with
      | Ref id -> B.mark_output b id
      | Const v ->
          let base = Circuit.name c o in
          let nm = if Circuit.kind c o = Gate.Input then base ^ "__const" else base in
          B.mark_output b (B.const b nm v))
    (Circuit.outputs c);
  prune_dead (B.finish b)

let simplify c = apply c []
