(** Structural Verilog writer.

    Emits a gate-level module using Verilog primitive gates ([and],
    [nand], [or], [nor], [xor], [xnor], [not], [buf]) and behavioural
    D flip-flops, so circuits can be handed to external logic
    simulators or synthesis tools.  Write-only: Verilog parsing is far
    outside this library's scope, and every circuit this library
    produces can be re-read via its [.bench]/[.blif] writers. *)

val to_string : Circuit.t -> string
(** Identifiers are sanitised to Verilog rules (non-word characters
    become ['_'], a leading digit gains an ['n'] prefix); name clashes
    after sanitisation get numeric suffixes. *)

val write_file : string -> Circuit.t -> unit
