exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

type cover_row = { pattern : string; value : bool }

type definition =
  | Def_cover of string list * string * cover_row list  (* inputs, output, rows *)
  | Def_latch of string * string  (* data, output *)

(* --- lexing: logical lines with '\' continuations, '#' comments --- *)

let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let rec glue acc pending pending_no = function
    | [] -> List.rev (match pending with Some (s, n) -> (s, n) :: acc | None -> acc)
    | (line, no) :: rest ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        let continued = String.length line > 0 && line.[String.length line - 1] = '\\' in
        let body = if continued then String.sub line 0 (String.length line - 1) else line in
        let merged, merged_no =
          match pending with
          | Some (p, pn) -> (p ^ " " ^ body, pn)
          | None -> (body, no)
        in
        if continued then glue acc (Some (merged, merged_no)) merged_no rest
        else if String.trim merged = "" then glue acc None pending_no rest
        else glue ((String.trim merged, merged_no) :: acc) None pending_no rest
  in
  glue [] None 0 (List.mapi (fun i l -> (l, i + 1)) raw)

let tokens s = String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

(* --- parsing ------------------------------------------------------ *)

let parse_string ?(title = "blif") text =
  let lines = logical_lines text in
  let model = ref title in
  let inputs = ref [] and outputs = ref [] in
  let defs = ref [] in
  let pending_cover = ref None in
  let flush_cover () =
    match !pending_cover with
    | Some (ins, out, rows) ->
        defs := Def_cover (ins, out, List.rev rows) :: !defs;
        pending_cover := None
    | None -> ()
  in
  List.iter
    (fun (line, no) ->
      match tokens line with
      | [] -> ()
      | tok :: rest when String.length tok > 0 && tok.[0] = '.' -> (
          flush_cover ();
          match (tok, rest) with
          | ".model", [ name ] -> model := name
          | ".model", _ -> fail no ".model takes one name"
          | ".inputs", names -> inputs := !inputs @ names
          | ".outputs", names -> outputs := !outputs @ names
          | ".names", names -> (
              match List.rev names with
              | out :: ins_rev -> pending_cover := Some (List.rev ins_rev, out, [])
              | [] -> fail no ".names needs at least an output")
          | ".latch", (data :: out :: _) -> defs := Def_latch (data, out) :: !defs
          | ".latch", _ -> fail no ".latch needs data and output signals"
          | ".end", _ | ".exdc", _ -> ()
          | _, _ -> fail no "unsupported construct %S" tok)
      | toks -> (
          match !pending_cover with
          | None -> fail no "cover row outside a .names block: %S" line
          | Some (ins, out, rows) ->
              let pattern, value =
                match toks with
                | [ v ] when ins = [] -> ("", v)
                | [ p; v ] -> (p, v)
                | _ -> fail no "malformed cover row %S" line
              in
              if String.length pattern <> List.length ins then
                fail no "cover row %S has wrong width" pattern;
              String.iter
                (fun ch -> if ch <> '0' && ch <> '1' && ch <> '-' then
                    fail no "bad cover character %C" ch)
                pattern;
              let value =
                match value with
                | "1" -> true
                | "0" -> false
                | _ -> fail no "cover output must be 0 or 1"
              in
              pending_cover := Some (ins, out, { pattern; value } :: rows)))
    lines;
  flush_cover ();
  let defs = List.rev !defs in
  (* Signal name -> defining entry. *)
  let def_of = Hashtbl.create 64 in
  List.iter
    (fun d ->
      let out = match d with Def_cover (_, o, _) -> o | Def_latch (_, o) -> o in
      if Hashtbl.mem def_of out || List.mem out !inputs then
        fail 0 "signal %S defined twice" out;
      Hashtbl.replace def_of out d)
    defs;
  let b = Circuit.Builder.create ~title:!model () in
  let ids = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace ids n (Circuit.Builder.input b n)) !inputs;
  (* Latches first (sources), their data connected afterwards. *)
  let latches = ref [] in
  List.iter
    (function
      | Def_latch (data, out) ->
          Hashtbl.replace ids out (Circuit.Builder.dff b out);
          latches := (data, out) :: !latches
      | Def_cover _ -> ())
    defs;
  (* Build covers in dependency order. *)
  let building = Hashtbl.create 16 in
  let rec resolve no name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None -> (
        if Hashtbl.mem building name then fail no "combinational cycle through %S" name;
        Hashtbl.replace building name ();
        match Hashtbl.find_opt def_of name with
        | None -> fail no "signal %S is used but never defined" name
        | Some (Def_latch _) -> assert false (* latches pre-registered *)
        | Some (Def_cover (ins, out, rows)) ->
            let in_ids = List.map (resolve no) ins in
            let id = build_cover no out in_ids rows in
            Hashtbl.remove building name;
            Hashtbl.replace ids name id;
            id)
  and build_cover no out in_ids rows =
    let n_ins = List.length in_ids in
    let in_arr = Array.of_list in_ids in
    (* Constant covers. *)
    if rows = [] then Circuit.Builder.const b out false
    else begin
      let values = List.map (fun r -> r.value) rows in
      let on_set = List.for_all Fun.id values in
      if (not on_set) && List.exists Fun.id values then
        fail no "cover for %S mixes on-set and off-set rows" out;
      if n_ins = 0 then Circuit.Builder.const b out on_set
      else begin
        (* Shared inverters per cover. *)
        let inverters = Array.make n_ins None in
        let inv i =
          match inverters.(i) with
          | Some id -> id
          | None ->
              let id =
                Circuit.Builder.gate b Gate.Not (Printf.sprintf "%s_n%d" out i) [ in_arr.(i) ]
              in
              inverters.(i) <- Some id;
              id
        in
        let product ri (r : cover_row) =
          let literals = ref [] in
          String.iteri
            (fun i ch ->
              match ch with
              | '1' -> literals := in_arr.(i) :: !literals
              | '0' -> literals := inv i :: !literals
              | _ -> ())
            r.pattern;
          match List.rev !literals with
          | [] -> Circuit.Builder.const b (Printf.sprintf "%s_p%d" out ri) true
          | [ l ] -> Circuit.Builder.gate b Gate.Buf (Printf.sprintf "%s_p%d" out ri) [ l ]
          | ls -> Circuit.Builder.gate b Gate.And (Printf.sprintf "%s_p%d" out ri) ls
        in
        let products = List.mapi product rows in
        match (products, on_set) with
        | [ p ], true -> Circuit.Builder.gate b Gate.Buf out [ p ]
        | [ p ], false -> Circuit.Builder.gate b Gate.Not out [ p ]
        | ps, true -> Circuit.Builder.gate b Gate.Or out ps
        | ps, false -> Circuit.Builder.gate b Gate.Nor out ps
      end
    end
  in
  List.iter
    (fun d ->
      match d with
      | Def_cover (_, out, _) -> ignore (resolve 0 out)
      | Def_latch _ -> ())
    defs;
  List.iter
    (fun (data, out) ->
      Circuit.Builder.connect_dff b (Hashtbl.find ids out) ~fanin:(resolve 0 data))
    !latches;
  if !outputs = [] then fail 0 "netlist declares no .outputs";
  List.iter
    (fun o ->
      match Hashtbl.find_opt ids o with
      | Some id -> Circuit.Builder.mark_output b id
      | None -> fail 0 ".outputs signal %S is never defined" o)
    !outputs;
  Circuit.Builder.finish b

let parse_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  parse_string ~title:(Filename.remove_extension (Filename.basename path)) text

(* --- writing ------------------------------------------------------ *)

let cover_of_gate c i =
  let k = Circuit.kind c i in
  let arity = Array.length (Circuit.fanins c i) in
  let all ch = String.make arity ch in
  let one_hot p ch fill =
    String.init arity (fun q -> if q = p then ch else fill)
  in
  match k with
  | Gate.Const0 -> []
  | Gate.Const1 -> [ { pattern = ""; value = true } ]
  | Gate.Buf | Gate.Dff -> [ { pattern = "1"; value = true } ]
  | Gate.Not -> [ { pattern = "0"; value = true } ]
  | Gate.And -> [ { pattern = all '1'; value = true } ]
  | Gate.Nand -> [ { pattern = all '1'; value = false } ]
  | Gate.Or -> List.init arity (fun p -> { pattern = one_hot p '1' '-'; value = true })
  | Gate.Nor -> [ { pattern = all '0'; value = true } ]
  | Gate.Xor | Gate.Xnor ->
      (* Enumerate odd/even-parity minterms. *)
      let want_odd = k = Gate.Xor in
      let rows = ref [] in
      for m = 0 to (1 lsl arity) - 1 do
        let ones = ref 0 in
        for p = 0 to arity - 1 do
          if (m lsr p) land 1 = 1 then incr ones
        done;
        if !ones land 1 = if want_odd then 1 else 0 then
          rows :=
            {
              pattern = String.init arity (fun p -> if (m lsr p) land 1 = 1 then '1' else '0');
              value = true;
            }
            :: !rows
      done;
      List.rev !rows
  | Gate.Input -> invalid_arg "Blif_format: input has no cover"

let to_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" (Circuit.title c));
  let names l = String.concat " " (List.map (Circuit.name c) (Array.to_list l)) in
  Buffer.add_string buf (Printf.sprintf ".inputs %s\n" (names (Circuit.inputs c)));
  Buffer.add_string buf (Printf.sprintf ".outputs %s\n" (names (Circuit.outputs c)));
  Circuit.iter_nodes c (fun i ->
      match Circuit.kind c i with
      | Gate.Input -> ()
      | Gate.Dff ->
          Buffer.add_string buf
            (Printf.sprintf ".latch %s %s 0\n"
               (Circuit.name c (Circuit.fanins c i).(0))
               (Circuit.name c i))
      | _ ->
          let ins =
            String.concat " "
              (List.map (Circuit.name c) (Array.to_list (Circuit.fanins c i)))
          in
          Buffer.add_string buf
            (Printf.sprintf ".names%s%s %s\n"
               (if ins = "" then "" else " ")
               ins (Circuit.name c i));
          List.iter
            (fun r ->
              if r.pattern = "" then
                Buffer.add_string buf (Printf.sprintf "%s\n" (if r.value then "1" else "0"))
              else
                Buffer.add_string buf
                  (Printf.sprintf "%s %s\n" r.pattern (if r.value then "1" else "0")))
            (cover_of_gate c i));
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file path c =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc (to_string c))
