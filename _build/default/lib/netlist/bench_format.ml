exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

type stmt =
  | S_input of string
  | S_output of string
  | S_gate of string * Gate.kind * string list

let is_space c = c = ' ' || c = '\t' || c = '\r'

let strip s =
  let n = String.length s in
  let a = ref 0 and b = ref (n - 1) in
  while !a < n && is_space s.[!a] do
    incr a
  done;
  while !b >= !a && is_space s.[!b] do
    decr b
  done;
  String.sub s !a (!b - !a + 1)

(* "NAME ( a , b )" -> (NAME, [a; b]). *)
let parse_call line s =
  match String.index_opt s '(' with
  | None -> fail line "expected '(' in %S" s
  | Some lp ->
      if String.length s = 0 || s.[String.length s - 1] <> ')' then
        fail line "expected ')' at end of %S" s;
      let fn = strip (String.sub s 0 lp) in
      let inner = String.sub s (lp + 1) (String.length s - lp - 2) in
      let args =
        String.split_on_char ',' inner |> List.map strip |> List.filter (fun a -> a <> "")
      in
      (fn, args)

let parse_line lineno raw =
  let s =
    match String.index_opt raw '#' with
    | Some i -> strip (String.sub raw 0 i)
    | None -> strip raw
  in
  if s = "" then None
  else
    match String.index_opt s '=' with
    | None -> (
        let fn, args = parse_call lineno s in
        match (String.uppercase_ascii fn, args) with
        | "INPUT", [ a ] -> Some (S_input a)
        | "OUTPUT", [ a ] -> Some (S_output a)
        | ("INPUT" | "OUTPUT"), _ -> fail lineno "INPUT/OUTPUT take exactly one signal"
        | _ -> fail lineno "unknown declaration %S" fn)
    | Some eq ->
        let lhs = strip (String.sub s 0 eq) in
        let rhs = strip (String.sub s (eq + 1) (String.length s - eq - 1)) in
        if lhs = "" then fail lineno "missing signal name before '='";
        let fn, args = parse_call lineno rhs in
        let k =
          match Gate.of_string fn with
          | Some k -> k
          | None -> fail lineno "unknown gate type %S" fn
        in
        (match k with
        | Gate.Input -> fail lineno "INPUT cannot appear on the right of '='"
        | _ -> ());
        if not (Gate.arity_ok k (List.length args)) then
          fail lineno "%s gate %S has %d operands" (Gate.to_string k) lhs (List.length args);
        Some (S_gate (lhs, k, args))

let parse_string ?(title = "bench") text =
  let stmts = ref [] in
  List.iteri
    (fun i raw ->
      match parse_line (i + 1) raw with Some s -> stmts := s :: !stmts | None -> ())
    (String.split_on_char '\n' text);
  let stmts = List.rev !stmts in
  let defs : (string, Gate.kind * string list) Hashtbl.t = Hashtbl.create 64 in
  let def_order = ref [] in
  let inputs = ref [] and outputs = ref [] in
  let define name v =
    if Hashtbl.mem defs name then fail 0 "signal %S defined twice" name;
    Hashtbl.add defs name v;
    def_order := name :: !def_order
  in
  List.iter
    (function
      | S_input a ->
          define a (Gate.Input, []);
          inputs := a :: !inputs
      | S_output a -> outputs := a :: !outputs
      | S_gate (lhs, k, args) -> define lhs (k, args))
    stmts;
  let inputs = List.rev !inputs and outputs = List.rev !outputs in
  let def_order = List.rev !def_order in
  (* Check all references resolve. *)
  List.iter
    (fun name ->
      let _, args = Hashtbl.find defs name in
      List.iter
        (fun a -> if not (Hashtbl.mem defs a) then fail 0 "signal %S is used but never defined" a)
        args)
    def_order;
  (* Topological order over combinational dependencies; DFFs are
     sources (their fanin edge crosses a clock boundary). *)
  let comb_deps name =
    match Hashtbl.find defs name with Gate.Dff, _ -> [] | _, args -> args
  in
  let indeg = Hashtbl.create 64 in
  let succs = Hashtbl.create 64 in
  List.iter
    (fun name ->
      Hashtbl.replace indeg name (List.length (comb_deps name));
      List.iter
        (fun d ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt succs d) in
          Hashtbl.replace succs d (name :: cur))
        (comb_deps name))
    def_order;
  (* Emit ready definitions in file order (min file index first) so a
     file already in dependency order — in particular our own
     [to_string] output — round-trips with identical node ids. *)
  let file_pos = Hashtbl.create 64 in
  List.iteri (fun i n -> Hashtbl.replace file_pos n i) def_order;
  let ready : string Util.Heap.t = Util.Heap.create () in
  let push n = Util.Heap.push ready ~key:(-Hashtbl.find file_pos n) n in
  List.iter (fun n -> if Hashtbl.find indeg n = 0 then push n) def_order;
  let order = ref [] in
  let emitted = ref 0 in
  let rec drain () =
    match Util.Heap.pop ready with
    | None -> ()
    | Some (_, n) ->
        order := n :: !order;
        incr emitted;
        List.iter
          (fun s ->
            let d = Hashtbl.find indeg s - 1 in
            Hashtbl.replace indeg s d;
            if d = 0 then push s)
          (Option.value ~default:[] (Hashtbl.find_opt succs n));
        drain ()
  in
  drain ();
  if !emitted <> List.length def_order then fail 0 "combinational cycle in netlist";
  let order = List.rev !order in
  (* Build: inputs first (declaration order), then topological order. *)
  let b = Circuit.Builder.create ~title () in
  let ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace ids n (Circuit.Builder.input b n)) inputs;
  let dff_defs = ref [] in
  List.iter
    (fun name ->
      if not (Hashtbl.mem ids name) then begin
        let k, args = Hashtbl.find defs name in
        match k with
        | Gate.Input -> ()
        | Gate.Dff ->
            Hashtbl.replace ids name (Circuit.Builder.dff b name);
            dff_defs := (name, args) :: !dff_defs
        | _ ->
            let fanin_ids = List.map (fun a -> Hashtbl.find ids a) args in
            Hashtbl.replace ids name (Circuit.Builder.gate b k name fanin_ids)
      end)
    order;
  List.iter
    (fun (name, args) ->
      match args with
      | [ a ] -> Circuit.Builder.connect_dff b (Hashtbl.find ids name) ~fanin:(Hashtbl.find ids a)
      | _ -> fail 0 "DFF %S must have exactly one operand" name)
    !dff_defs;
  if outputs = [] then fail 0 "netlist declares no OUTPUT";
  List.iter
    (fun o ->
      match Hashtbl.find_opt ids o with
      | Some id -> Circuit.Builder.mark_output b id
      | None -> fail 0 "OUTPUT %S is never defined" o)
    outputs;
  Circuit.Builder.finish b

let parse_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  let title = Filename.remove_extension (Filename.basename path) in
  parse_string ~title text

let to_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Circuit.title c));
  Array.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Circuit.name c i)))
    (Circuit.inputs c);
  Array.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Circuit.name c i)))
    (Circuit.outputs c);
  (* Emit definitions in id order — valid because forward references are
     allowed by the format. *)
  Circuit.iter_nodes c (fun i ->
      match Circuit.kind c i with
      | Gate.Input -> ()
      | k ->
          let args =
            Circuit.fanins c i |> Array.to_list
            |> List.map (Circuit.name c)
            |> String.concat ", "
          in
          Buffer.add_string buf
            (Printf.sprintf "%s = %s(%s)\n" (Circuit.name c i) (Gate.to_string k) args));
  Buffer.contents buf

let write_file path c =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc (to_string c))
