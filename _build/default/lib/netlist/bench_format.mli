(** Reader and writer for the ISCAS-85/89 [.bench] netlist format.

    The format is line-oriented:
    {v
    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G1)
    G11 = DFF(G10)
    v}

    Forward references are allowed (a gate may use a signal defined on a
    later line), as real benchmark files do.  Signals referenced but
    never defined are an error. *)

exception Parse_error of int * string
(** [(line, message)] — [line] is 1-based; 0 when no line applies. *)

val parse_string : ?title:string -> string -> Circuit.t
(** Parse a full [.bench] file from a string.
    @raise Parse_error on malformed input. *)

val parse_file : string -> Circuit.t
(** Parse from a file path; the title is the basename without
    extension. *)

val to_string : Circuit.t -> string
(** Emit a circuit in [.bench] syntax.  [parse_string (to_string c)] is
    structurally identical to [c]. *)

val write_file : string -> Circuit.t -> unit
