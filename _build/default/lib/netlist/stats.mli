(** Circuit statistics for reports (Table 4's "inp" column etc.). *)

type t = {
  name : string;
  pis : int;
  pos : int;
  gates : int;  (** logic nodes, excluding PIs and constants *)
  dffs : int;
  pins : int;  (** total gate input pins *)
  depth : int;
  max_fanout : int;
  kind_histogram : (Gate.kind * int) list;  (** sorted by kind mnemonic *)
}

val of_circuit : Circuit.t -> t
val pp : Format.formatter -> t -> unit
