type kind =
  | Input
  | Const0
  | Const1
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Dff

let to_string = function
  | Input -> "INPUT"
  | Const0 -> "CONST0"
  | Const1 -> "CONST1"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Dff -> "DFF"

let of_string s =
  match String.uppercase_ascii s with
  | "INPUT" -> Some Input
  | "CONST0" -> Some Const0
  | "CONST1" -> Some Const1
  | "BUF" | "BUFF" -> Some Buf
  | "NOT" | "INV" -> Some Not
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "DFF" -> Some Dff
  | _ -> None

let arity_ok k n =
  match k with
  | Input | Const0 | Const1 -> n = 0
  | Buf | Not | Dff -> n = 1
  | And | Nand | Or | Nor | Xor | Xnor -> n >= 1

let inverting = function
  | Nand | Nor | Xnor | Not -> true
  | Input | Const0 | Const1 | Buf | And | Or | Xor | Dff -> false

let controlling_value = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Input | Const0 | Const1 | Buf | Not | Xor | Xnor | Dff -> None

let equal (a : kind) b = a = b
let pp ppf k = Format.pp_print_string ppf (to_string k)
