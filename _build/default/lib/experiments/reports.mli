(** Formatters that regenerate each table and figure of the paper from
    experiment data.  Every function returns the rendered text so the
    bench driver, the CLI and the tests share one implementation. *)

val table1 : unit -> string
(** Table 1 + the Section 2/3 worked examples, on the [lion] stand-in:
    [ndet(u)] for all 16 input vectors, [D(f)]/[ADI(f)] for sample
    faults, and the first steps of the dynamic ordering. *)

val table4 : Evaluation.circuit_eval list -> string
(** "Accidental detection index": inputs, |U|, ADImin/ADImax/ratio. *)

val table5 : Evaluation.circuit_eval list -> string
(** "Test generation": test-set sizes per fault order, with the
    average row.  Orders missing from an evaluation print as "-". *)

val table6 : Evaluation.circuit_eval list -> string
(** "Relative run times": RTord / RTorig. *)

val table7 : Evaluation.circuit_eval list -> string
(** "Steepness of fault coverage curves": AVEord / AVEorig. *)

val figure1 : Evaluation.circuit_eval -> string
(** The fault-coverage plot (tests %% vs coverage %%) for one circuit,
    with the paper's marker convention: o = orig, d = dynm,
    z = 0dynm. *)

val ablation_static : Evaluation.circuit_eval list -> string
(** DESIGN ablation A1: static Fdecr/F0decr against the dynamic orders
    (the paper states the dynamic versions "proved to be better" without
    printing the data). *)

val ablation_u : Circuit.t -> seed:int -> string
(** DESIGN ablation A2: sensitivity of |U|, the ADI spread and the
    0dynm test count to the U-selection coverage target. *)

val ablation_ndetection : Circuit.t -> seed:int -> string
(** DESIGN ablation A3: the paper's cheaper n-detection estimate of
    [ndet(u)] — ADI range and 0dynm test count as the cap [n] grows
    towards full non-dropping simulation. *)

val ablation_estimator : Circuit.t -> seed:int -> string
(** DESIGN ablation A4: the conservative minimum estimator (the
    paper's choice) against the average estimator Section 2 mentions. *)

val ablation_reorder : Evaluation.circuit_eval list -> string
(** DESIGN ablation A5: steepness (AVE) of ADI-ordered generation
    against a-posteriori greedy reordering of the Forig test set (the
    method of the paper's reference [7]). *)

val ablation_independence : Evaluation.circuit_eval list -> string
(** DESIGN ablation A6: the introduction's prior-art ordering baseline
    (maximal independent fault sets per fanout-free region, COMPACTEST)
    against [Forig] and [F0dynm]. *)

val ablation_engines : Circuit.t list -> string
(** DESIGN ablation A7: PODEM vs the D-algorithm on the same collapsed
    fault universes — outcome agreement and search effort. *)

val ablation_compaction : Evaluation.circuit_eval list -> string
(** DESIGN ablation A8: ADI ordering vs classic dynamic compaction
    (secondary target faults, the paper's reference [1]) — test counts
    and run-time ratios, testing the paper's "same benefit without the
    run-time cost" positioning. *)

val ablation_truncation : Evaluation.circuit_eval list -> string
(** DESIGN ablation A9: the paper's tester-memory motivation made
    concrete — fault coverage after keeping only the first 25/50/75%
    of each order's test set.  A steeper curve loses less. *)
