(** Experiment orchestration.

    Builds each suite circuit once per process, shares the per-circuit
    evaluations between tables 5/6/7 and figure 1, and renders the
    requested artefact.  The CLI ([adi-atpg experiment]) and the bench
    driver ([bench/main.exe]) both go through this module, so their
    outputs are identical. *)

val evaluations : ?seed:int -> full:bool -> unit -> Evaluation.circuit_eval list
(** One evaluation per suite circuit ([full] adds syn5378/syn13207,
    for which the deliberately bad [Fincr0] order is skipped, as in the
    paper).  Memoised per (seed, full). *)

val table4_evaluations : ?seed:int -> full:bool -> unit -> Evaluation.circuit_eval list
(** Setup-only evaluations (no ATPG runs) — enough for Table 4 and
    much faster when only that table is wanted. *)

val run_experiment : ?seed:int -> full:bool -> string -> string
(** [run_experiment name] renders one artefact: ["table1"], ["table4"],
    ["table5"], ["table6"], ["table7"], ["figure1"],
    ["ablation-static"], ["ablation-u"], or ["all"].
    @raise Invalid_argument on an unknown name. *)

val experiment_names : string list
