let eval_cache : (int * bool, Evaluation.circuit_eval list) Hashtbl.t = Hashtbl.create 4
let setup_cache : (int * bool, Evaluation.circuit_eval list) Hashtbl.t = Hashtbl.create 4

let suite_entries ~full = if full then Suite.entries else Suite.small

let evaluations ?(seed = 1) ~full () =
  match Hashtbl.find_opt eval_cache (seed, full) with
  | Some evs -> evs
  | None ->
      let evs =
        List.map
          (fun (e : Suite.entry) ->
            let orders =
              if e.Suite.big then [ Ordering.Orig; Ordering.Dynm; Ordering.Dynm0 ]
              else Evaluation.default_orders
            in
            Evaluation.evaluate ~orders ~seed ~paper_name:e.Suite.paper_name (Suite.build e))
          (suite_entries ~full)
      in
      Hashtbl.replace eval_cache (seed, full) evs;
      evs

let table4_evaluations ?(seed = 1) ~full () =
  match (Hashtbl.find_opt eval_cache (seed, full), Hashtbl.find_opt setup_cache (seed, full)) with
  | Some evs, _ -> evs
  | None, Some evs -> evs
  | None, None ->
      let evs =
        List.map
          (fun (e : Suite.entry) ->
            Evaluation.evaluate ~orders:[] ~seed ~paper_name:e.Suite.paper_name (Suite.build e))
          (suite_entries ~full)
      in
      Hashtbl.replace setup_cache (seed, full) evs;
      evs

let figure1_eval ?(seed = 1) () =
  let evs = evaluations ~seed ~full:false () in
  List.find (fun (ev : Evaluation.circuit_eval) -> ev.Evaluation.name = "syn420") evs

let ablation_evals ?(seed = 1) () =
  let orders = [ Ordering.Decr; Ordering.Decr0; Ordering.Dynm; Ordering.Dynm0 ] in
  List.filteri (fun i _ -> i < 6) Suite.small
  |> List.map (fun (e : Suite.entry) ->
         Evaluation.evaluate ~orders ~seed ~paper_name:e.Suite.paper_name (Suite.build e))

let experiment_names =
  [
    "table1"; "table4"; "table5"; "table6"; "table7"; "figure1"; "ablation-static";
    "ablation-u"; "ablation-ndetection"; "ablation-estimator"; "ablation-reorder";
    "ablation-independence"; "ablation-engines"; "ablation-compaction";
    "ablation-truncation"; "all";
  ]

let rec run_experiment ?(seed = 1) ~full which =
  match which with
  | "table1" -> Reports.table1 ()
  | "table4" -> Reports.table4 (table4_evaluations ~seed ~full ())
  | "table5" -> Reports.table5 (evaluations ~seed ~full ())
  | "table6" -> Reports.table6 (evaluations ~seed ~full ())
  | "table7" -> Reports.table7 (evaluations ~seed ~full ())
  | "figure1" -> Reports.figure1 (figure1_eval ~seed ())
  | "ablation-static" -> Reports.ablation_static (ablation_evals ~seed ())
  | "ablation-u" -> Reports.ablation_u (Suite.build_by_name "syn420") ~seed
  | "ablation-ndetection" -> Reports.ablation_ndetection (Suite.build_by_name "syn420") ~seed
  | "ablation-estimator" -> Reports.ablation_estimator (Suite.build_by_name "syn420") ~seed
  | "ablation-reorder" ->
      let evs = evaluations ~seed ~full:false () in
      Reports.ablation_reorder (List.filteri (fun i _ -> i < 6) evs)
  | "ablation-independence" ->
      let evs = evaluations ~seed ~full:false () in
      Reports.ablation_independence (List.filteri (fun i _ -> i < 6) evs)
  | "ablation-truncation" ->
      let evs = evaluations ~seed ~full:false () in
      Reports.ablation_truncation (List.filteri (fun i _ -> i < 4) evs)
  | "ablation-compaction" ->
      let evs = evaluations ~seed ~full:false () in
      Reports.ablation_compaction (List.filteri (fun i _ -> i < 6) evs)
  | "ablation-engines" ->
      Reports.ablation_engines
        [ Suite.build_by_name "c17"; Suite.build_by_name "lion";
          Suite.build_by_name "syn208"; Suite.build_by_name "syn298";
          Suite.build_by_name "syn344" ]
  | "all" ->
      String.concat "\n"
        (List.filter_map
           (fun w -> if w = "all" then None else Some (run_experiment ~seed ~full w))
           experiment_names)
  | _ ->
      invalid_arg
        (Printf.sprintf "Harness.run_experiment: unknown experiment %S (expected one of %s)"
           which
           (String.concat ", " experiment_names))
