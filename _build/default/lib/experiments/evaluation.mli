(** Shared experiment driver.

    Tables 5, 6 and 7 and Figure 1 all consume the same runs (one test
    generation per fault order per circuit); this module performs each
    run once and the table formatters read from it. *)

type circuit_eval = {
  name : string;
  paper_name : string;
  setup : Pipeline.setup;
  runs : (Ordering.kind * Pipeline.run) list;
}

val default_orders : Ordering.kind list
(** [Orig; Dynm; Dynm0; Incr0] — the orders Table 5 reports. *)

val evaluate :
  ?orders:Ordering.kind list ->
  ?seed:int ->
  ?paper_name:string ->
  Circuit.t ->
  circuit_eval
(** Prepare the pipeline and run every requested order.  [seed]
    defaults to 1 (all published numbers in EXPERIMENTS.md use it). *)

val run : circuit_eval -> Ordering.kind -> Pipeline.run
(** @raise Not_found if the order was not evaluated. *)

val curve : circuit_eval -> Ordering.kind -> Coverage.t
(** Fault-coverage curve of one run. *)

val ave_ratio : circuit_eval -> Ordering.kind -> float
(** [AVEord / AVEorig] — Table 7's entries.  Requires [Orig] among the
    evaluated orders. *)

val runtime_ratio : circuit_eval -> Ordering.kind -> float
(** [RTord / RTorig] — Table 6's entries. *)
