lib/experiments/harness.ml: Evaluation Hashtbl List Ordering Printf Reports String Suite
