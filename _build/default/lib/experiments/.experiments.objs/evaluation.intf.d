lib/experiments/evaluation.mli: Circuit Coverage Ordering Pipeline
