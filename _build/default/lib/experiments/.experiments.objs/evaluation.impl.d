lib/experiments/evaluation.ml: Circuit Coverage Engine List Option Ordering Pipeline
