lib/experiments/reports.mli: Circuit Evaluation
