lib/experiments/harness.mli: Evaluation
