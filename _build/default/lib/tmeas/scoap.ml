let infinite_cost = 1_000_000_000

let ( +! ) a b =
  let s = a + b in
  if s >= infinite_cost then infinite_cost else s

type t = {
  cc0 : int array;
  cc1 : int array;
  co : int array;  (* stem observability per node *)
  co_pins : int array array;  (* per gate, per pin *)
}

(* Fold two (cc0, cc1) pairs through a 2-input XOR. *)
let xor_combine (a0, a1) (b0, b1) = (min (a0 +! b0) (a1 +! b1), min (a0 +! b1) (a1 +! b0))

let compute c =
  if Circuit.has_state c then invalid_arg "Scoap.compute: circuit must be combinational";
  let n = Circuit.node_count c in
  let cc0 = Array.make n infinite_cost and cc1 = Array.make n infinite_cost in
  let pair i = (cc0.(i), cc1.(i)) in
  Array.iter
    (fun i ->
      let fi = Circuit.fanins c i in
      let sum_cc which = Array.fold_left (fun acc f -> acc +! which f) 0 fi in
      let min_cc which = Array.fold_left (fun acc f -> min acc (which f)) infinite_cost fi in
      let get0 f = cc0.(f) and get1 f = cc1.(f) in
      match Circuit.kind c i with
      | Gate.Input ->
          cc0.(i) <- 1;
          cc1.(i) <- 1
      | Gate.Const0 ->
          cc0.(i) <- 0;
          cc1.(i) <- infinite_cost
      | Gate.Const1 ->
          cc0.(i) <- infinite_cost;
          cc1.(i) <- 0
      | Gate.Buf | Gate.Dff ->
          cc0.(i) <- cc0.(fi.(0)) +! 1;
          cc1.(i) <- cc1.(fi.(0)) +! 1
      | Gate.Not ->
          cc0.(i) <- cc1.(fi.(0)) +! 1;
          cc1.(i) <- cc0.(fi.(0)) +! 1
      | Gate.And ->
          cc1.(i) <- sum_cc get1 +! 1;
          cc0.(i) <- min_cc get0 +! 1
      | Gate.Nand ->
          cc0.(i) <- sum_cc get1 +! 1;
          cc1.(i) <- min_cc get0 +! 1
      | Gate.Or ->
          cc0.(i) <- sum_cc get0 +! 1;
          cc1.(i) <- min_cc get1 +! 1
      | Gate.Nor ->
          cc1.(i) <- sum_cc get0 +! 1;
          cc0.(i) <- min_cc get1 +! 1
      | Gate.Xor | Gate.Xnor ->
          let z0, z1 =
            match Array.length fi with
            | 0 -> (infinite_cost, infinite_cost)
            | _ ->
                Array.fold_left
                  (fun acc f -> xor_combine acc (pair f))
                  (pair fi.(0))
                  (Array.sub fi 1 (Array.length fi - 1))
          in
          let z0, z1 = if Circuit.kind c i = Gate.Xnor then (z1, z0) else (z0, z1) in
          cc0.(i) <- z0 +! 1;
          cc1.(i) <- z1 +! 1)
    (Circuit.topological_order c);
  (* Observabilities, reverse topological order. *)
  let co = Array.make n infinite_cost in
  let co_pins = Array.init n (fun i -> Array.make (Array.length (Circuit.fanins c i)) infinite_cost) in
  Array.iter (fun o -> co.(o) <- 0) (Circuit.outputs c);
  let topo = Circuit.topological_order c in
  for idx = Array.length topo - 1 downto 0 do
    let g = topo.(idx) in
    let fi = Circuit.fanins c g in
    let arity = Array.length fi in
    (* Cost to sensitise pin p through gate g. *)
    for p = 0 to arity - 1 do
      let side_cost =
        match Circuit.kind c g with
        | Gate.Input | Gate.Const0 | Gate.Const1 -> infinite_cost
        | Gate.Buf | Gate.Not | Gate.Dff -> 0
        | Gate.And | Gate.Nand ->
            (* other inputs at non-controlling 1 *)
            let s = ref 0 in
            for q = 0 to arity - 1 do
              if q <> p then s := !s +! cc1.(fi.(q))
            done;
            !s
        | Gate.Or | Gate.Nor ->
            let s = ref 0 in
            for q = 0 to arity - 1 do
              if q <> p then s := !s +! cc0.(fi.(q))
            done;
            !s
        | Gate.Xor | Gate.Xnor ->
            (* other inputs at any known value: cheapest of the two *)
            let s = ref 0 in
            for q = 0 to arity - 1 do
              if q <> p then s := !s +! min cc0.(fi.(q)) cc1.(fi.(q))
            done;
            !s
      in
      let cost = co.(g) +! side_cost +! 1 in
      co_pins.(g).(p) <- cost;
      (* A stem's observability is the cheapest branch. *)
      if cost < co.(fi.(p)) then co.(fi.(p)) <- cost
    done
  done;
  { cc0; cc1; co; co_pins }

let cc0 t i = t.cc0.(i)
let cc1 t i = t.cc1.(i)
let cc t i v = if v then t.cc1.(i) else t.cc0.(i)
let co t i = t.co.(i)
let co_pin t ~gate ~pin = t.co_pins.(gate).(pin)
