(** SCOAP testability measures (Goldstein 1979).

    Combinational controllabilities [CC0]/[CC1] estimate how many line
    assignments are needed to set a node to 0/1; observability [CO]
    estimates the effort to propagate a node's value to a primary
    output.  PODEM uses them to choose among X-valued fanins during
    backtrace and among D-frontier gates.

    For n-ary XOR/XNOR the classic two-input rules are folded
    left-associatively, which keeps costs monotone without enumerating
    parity assignments. *)

type t

val compute : Circuit.t -> t
(** Requires a combinational circuit. *)

val cc0 : t -> int -> int
(** Cost of setting node's output to 0.  PIs cost 1; constants cost 0
    for their own value and [infinite_cost] for the other. *)

val cc1 : t -> int -> int

val cc : t -> int -> bool -> int
(** [cc t n v] is [cc1] if [v] else [cc0]. *)

val co : t -> int -> int
(** Stem observability of a node (min over fanout branches);
    [infinite_cost] for dead nodes. *)

val co_pin : t -> gate:int -> pin:int -> int
(** Observability of one gate input pin. *)

val infinite_cost : int
(** Sentinel for "unachievable" (redundant/dead logic); all arithmetic
    saturates at this value. *)
