lib/atpg/engine.ml: Array Circuit Dalg Fault_list Faultsim Goodsim Int64 List Patterns Podem Scoap Ternary Unix Util
