lib/atpg/podem.ml: Array Circuit Fault Five Gate List Option Scoap Ternary
