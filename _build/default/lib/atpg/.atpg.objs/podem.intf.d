lib/atpg/podem.mli: Circuit Fault Scoap Ternary
