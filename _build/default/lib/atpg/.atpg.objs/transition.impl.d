lib/atpg/transition.ml: Array Circuit Engine Fault Faultsim Goodsim List Podem Scoap Util
