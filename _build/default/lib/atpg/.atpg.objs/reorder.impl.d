lib/atpg/reorder.ml: Array Fault_list Faultsim Patterns Util
