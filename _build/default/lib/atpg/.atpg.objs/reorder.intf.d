lib/atpg/reorder.mli: Fault_list Patterns
