lib/atpg/dalg.ml: Array Circuit Fault Five Gate List Option Podem Scoap Ternary
