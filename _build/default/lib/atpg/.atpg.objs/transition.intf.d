lib/atpg/transition.mli: Circuit Scoap
