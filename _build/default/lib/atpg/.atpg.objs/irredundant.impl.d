lib/atpg/irredundant.ml: Array Circuit Collapse Fault Fault_list Faultsim Gate List Patterns Podem Rewrite Scoap Util
