lib/atpg/compact.ml: Array Circuit Fault_list Faultsim Goodsim Int64 List Patterns Util
