lib/atpg/engine.mli: Fault_list Patterns Podem Ternary Util
