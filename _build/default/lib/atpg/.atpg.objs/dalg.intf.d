lib/atpg/dalg.mli: Circuit Fault Podem Scoap
