lib/atpg/compact.mli: Fault_list Patterns
