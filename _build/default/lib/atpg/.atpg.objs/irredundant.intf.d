lib/atpg/irredundant.mli: Circuit
