module Bitvec = Util.Bitvec

type result = { kept : int array; tests : Patterns.t }

let set_cover fl pats =
  let c = Fault_list.circuit fl in
  let n_inputs = Array.length (Circuit.inputs c) in
  if Patterns.n_inputs pats <> n_inputs then
    invalid_arg "Compact.set_cover: pattern width mismatch";
  let n_tests = Patterns.count pats in
  let dsets = Faultsim.detection_sets fl pats in
  let nf = Fault_list.count fl in
  (* Transpose to per-test fault sets. *)
  let per_test = Array.init n_tests (fun _ -> Bitvec.create nf) in
  Array.iteri (fun fi d -> Bitvec.iter_set d (fun t -> Bitvec.set per_test.(t) fi true)) dsets;
  let remaining = Array.map Bitvec.copy per_test in
  let used = Array.make n_tests false in
  let kept = ref [] in
  let rec loop () =
    let best = ref (-1) and best_cnt = ref 0 in
    for t = 0 to n_tests - 1 do
      if not used.(t) then begin
        let cnt = Bitvec.popcount remaining.(t) in
        if cnt > !best_cnt then begin
          best := t;
          best_cnt := cnt
        end
      end
    done;
    if !best >= 0 && !best_cnt > 0 then begin
      used.(!best) <- true;
      kept := !best :: !kept;
      for t = 0 to n_tests - 1 do
        if not used.(t) then Bitvec.diff_into ~dst:remaining.(t) per_test.(!best)
      done;
      loop ()
    end
  in
  loop ();
  let kept = Array.of_list (List.sort compare !kept) in
  let rows = Array.map (fun t -> Patterns.vector pats t) kept in
  { kept; tests = Patterns.of_vectors ~n_inputs rows }

let reverse_order fl pats =
  let c = Fault_list.circuit fl in
  let n_inputs = Array.length (Circuit.inputs c) in
  if Patterns.n_inputs pats <> n_inputs then
    invalid_arg "Compact.reverse_order: pattern width mismatch";
  let nf = Fault_list.count fl in
  let ws = Faultsim.workspace c in
  let good = Array.make (Circuit.node_count c) 0L in
  let detected = Array.make nf false in
  let kept = ref [] in
  for t = Patterns.count pats - 1 downto 0 do
    let vec = Patterns.vector pats t in
    let single = Patterns.of_vectors ~n_inputs [| vec |] in
    Goodsim.block_into c single 0 good;
    let useful = ref false in
    for fi = 0 to nf - 1 do
      if not detected.(fi) then
        if Int64.logand (Faultsim.detect_block ws ~good (Fault_list.get fl fi)) 1L = 1L
        then begin
          detected.(fi) <- true;
          useful := true
        end
    done;
    if !useful then kept := t :: !kept
  done;
  let kept = Array.of_list !kept in
  let rows = Array.map (fun t -> Patterns.vector pats t) kept in
  { kept; tests = Patterns.of_vectors ~n_inputs rows }
