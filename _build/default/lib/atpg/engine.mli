(** The test-generation engine: targets faults in a given order, with
    fault dropping and random fill, and {e no} dynamic compaction —
    exactly the procedure of the paper's Section 4.

    For each not-yet-detected fault, in order: run PODEM; fill the
    returned cube's don't-cares randomly; fault-simulate the resulting
    vector against all live faults and drop everything it detects.
    Faults proven untestable or aborted are recorded and skipped. *)

type generator = Podem_gen | Dalg_gen

type config = {
  backtrack_limit : int;  (** search backtrack cap (default 256) *)
  seed : int;  (** random-fill seed (default 0xAD1) *)
  generator : generator;  (** which ATPG drives the loop (default PODEM) *)
}

val default_config : config

type result = {
  tests : Patterns.t;  (** generated vectors, in generation order *)
  detected_by : int array;
      (** per fault index: the test (position in [tests]) that first
          detected it, or -1 *)
  targeted : int array;
      (** per test: the fault index the test was generated for *)
  untestable : int list;  (** proven redundant faults *)
  aborted : int list;  (** backtrack-limit hits *)
  stats : Podem.stats;  (** accumulated search statistics *)
  runtime_s : float;  (** wall-clock generation time *)
}

val run : ?config:config -> Fault_list.t -> order:int array -> result
(** [run fl ~order] generates a test set.  [order] is a permutation of
    fault indices (see {!Ordering}); the engine considers faults in
    exactly this order.
    @raise Invalid_argument if [order] is not a permutation of
    [0 .. count-1]. *)

val coverage : Fault_list.t -> result -> float
(** Fraction of faults detected, over faults not proven untestable. *)

val run_n_detect :
  ?config:config -> n:int -> Fault_list.t -> order:int array -> result
(** n-detect generation: keep targeting faults until each is detected
    by [n] {e distinct} tests (or its test generation fails).  The
    result's [detected_by] holds first detections; tests added by later
    passes only raise multiplicity.  n-detect sets drive the
    n-detection ADI estimate and are standard practice for defect
    coverage beyond the stuck-at model. *)

val run_compacting :
  ?config:config -> ?secondary_limit:int -> Fault_list.t -> order:int array -> result
(** The engine with classic {e dynamic compaction} (the paper's
    reference [1]): after each primary test cube, up to
    [secondary_limit] (default 50) further undetected faults are
    targeted under the cube's assignments, merging every success into
    the vector before random fill.  This is the costly alternative the
    ADI ordering competes with; ablation A8 compares them. *)

val fill_cube : Util.Rng.t -> Ternary.t array -> bool array
(** Replace don't-cares with random values. *)
