(** Transition (gross-delay) faults — an extension beyond the paper's
    stuck-at model.

    A slow-to-rise fault at node [n] is detected by a vector pair
    [(v1, v2)]: [v1] initialises [n] to 0, [v2] drives it to 1 and
    propagates the late edge — equivalently, under [v2] the fault
    behaves as [n] stuck-at-0.  (Dually for slow-to-fall.)  In a
    full-scan circuit the pair is applied by launch-on-capture; here we
    model the combinational view: any pair of PI vectors.

    Pair generation reuses the stuck-at machinery: [v2] is a PODEM test
    for the corresponding stuck-at fault (its excitation constraint
    already forces the final value), and [v1] justifies the initial
    value (via the opposite-polarity stuck-at test cube, falling back
    to random search). *)

type fault = { node : int; rising : bool }
(** Slow-to-rise ([rising = true]) or slow-to-fall at a node. *)

val all_faults : Circuit.t -> fault array
(** Two transition faults per node, node-major, rise before fall. *)

val detects : Circuit.t -> fault -> v1:bool array -> v2:bool array -> bool
(** Does the pair detect the fault?  (Initial value correct under [v1],
    and the late value propagates under [v2].) *)

type outcome =
  | Pair of bool array * bool array  (** a detecting (v1, v2) *)
  | Untestable  (** the stuck-at view is untestable, or no initialising vector exists *)
  | Aborted

val generate : ?backtrack_limit:int -> ?seed:int -> Circuit.t -> Scoap.t -> fault -> outcome
(** Generate a vector pair for one transition fault. *)

type result = {
  pairs : (bool array * bool array) array;
  detected : int;
  untestable : int;
  aborted : int;
  total : int;
}

val run : ?backtrack_limit:int -> ?seed:int -> Circuit.t -> result
(** Pair generation with fault dropping (each new pair is simulated
    against all remaining transition faults). *)

val coverage : result -> float
(** [detected / (total - untestable)]. *)
