(** Redundancy removal.

    A stuck-at fault that no input vector can detect marks logic that
    does not influence any output: tying the faulted line to the stuck
    value leaves the (good-machine) function unchanged.  This pass
    finds proven-untestable faults with PODEM and rewrites them away,
    iterating until no proven redundancy remains — the process behind
    the "irredundant versions" ([ircirc]) the paper evaluates on.

    Candidate faults are pre-filtered by random-pattern simulation so
    PODEM only runs on faults random vectors cannot detect.

    Substitutions found in one round are applied in a batch.  On a
    batch the rewritten circuit need not be functionally equivalent to
    the input (two redundancies can cover each other), which is
    acceptable here: the goal is {e an} irredundant circuit of a given
    size, not function preservation — matching how the synthetic suite
    uses it.  Faults whose search hits the backtrack limit are left
    alone (they are reported, not removed). *)

type report = {
  rounds : int;
  removed : int;  (** substitutions applied over all rounds *)
  aborted_last : int;  (** unresolved (backtrack-limited) faults in the last round *)
}

val remove :
  ?backtrack_limit:int ->
  ?random_vectors:int ->
  ?seed:int ->
  ?max_rounds:int ->
  Circuit.t ->
  Circuit.t * report
(** Defaults: [backtrack_limit = 4096], [random_vectors = 2048],
    [seed = 7], [max_rounds = 16].  Requires a combinational
    circuit. *)
