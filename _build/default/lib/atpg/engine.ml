module Rng = Util.Rng

type generator = Podem_gen | Dalg_gen

type config = { backtrack_limit : int; seed : int; generator : generator }

let default_config = { backtrack_limit = 256; seed = 0xAD1; generator = Podem_gen }

type result = {
  tests : Patterns.t;
  detected_by : int array;
  targeted : int array;
  untestable : int list;
  aborted : int list;
  stats : Podem.stats;
  runtime_s : float;
}

let fill_cube rng cube =
  Array.map
    (function Ternary.Zero -> false | Ternary.One -> true | Ternary.X -> Rng.bool rng)
    cube

let check_order n order =
  if Array.length order <> n then invalid_arg "Engine.run: order length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then invalid_arg "Engine.run: order is not a permutation";
      seen.(i) <- true)
    order

let run ?(config = default_config) fl ~order =
  let c = Fault_list.circuit fl in
  let nf = Fault_list.count fl in
  check_order nf order;
  let t0 = Unix.gettimeofday () in
  let scoap = Scoap.compute c in
  let ws = Faultsim.workspace c in
  let rng = Rng.create config.seed in
  let stats = Podem.fresh_stats () in
  let ctx = Podem.context ~stats c scoap in
  let detected_by = Array.make nf (-1) in
  let untestable = ref [] and aborted = ref [] in
  let tests = ref [] and targeted = ref [] and n_tests = ref 0 in
  let n_inputs = Array.length (Circuit.inputs c) in
  let good = Array.make (Circuit.node_count c) 0L in
  (* Fault-simulate one vector against all live faults and drop hits. *)
  let simulate_and_drop vec test_idx =
    let pats = Patterns.of_vectors ~n_inputs [| vec |] in
    Goodsim.block_into c pats 0 good;
    for fi = 0 to nf - 1 do
      if detected_by.(fi) < 0 then
        if Int64.logand (Faultsim.detect_block ws ~good (Fault_list.get fl fi)) 1L = 1L then
          detected_by.(fi) <- test_idx
    done
  in
  Array.iter
    (fun fi ->
      if detected_by.(fi) < 0 then begin
        match
          (match config.generator with
          | Podem_gen ->
              Podem.generate_in ~backtrack_limit:config.backtrack_limit ctx
                (Fault_list.get fl fi)
          | Dalg_gen ->
              Dalg.generate ~backtrack_limit:config.backtrack_limit ~stats c scoap
                (Fault_list.get fl fi))
        with
        | Podem.Untestable -> untestable := fi :: !untestable
        | Podem.Aborted -> aborted := fi :: !aborted
        | Podem.Test cube ->
            let vec = fill_cube rng cube in
            let idx = !n_tests in
            tests := vec :: !tests;
            targeted := fi :: !targeted;
            incr n_tests;
            simulate_and_drop vec idx;
            (* Five-valued D-propagation is pessimistic, so the cube
               detects the target for every fill of its don't-cares. *)
            assert (detected_by.(fi) = idx)
      end)
    order;
  let tests_arr = Array.of_list (List.rev !tests) in
  {
    tests = Patterns.of_vectors ~n_inputs tests_arr;
    detected_by;
    targeted = Array.of_list (List.rev !targeted);
    untestable = List.rev !untestable;
    aborted = List.rev !aborted;
    stats;
    runtime_s = Unix.gettimeofday () -. t0;
  }

let run_n_detect ?(config = default_config) ~n fl ~order =
  if n <= 0 then invalid_arg "Engine.run_n_detect: n must be positive";
  let c = Fault_list.circuit fl in
  let nf = Fault_list.count fl in
  check_order nf order;
  let t0 = Unix.gettimeofday () in
  let scoap = Scoap.compute c in
  let ws = Faultsim.workspace c in
  let rng = Rng.create config.seed in
  let stats = Podem.fresh_stats () in
  let ctx = Podem.context ~stats c scoap in
  let counts = Array.make nf 0 in
  let detected_by = Array.make nf (-1) in
  let untestable = ref [] and aborted = ref [] in
  let tests = ref [] and targeted = ref [] and n_tests = ref 0 in
  let n_inputs = Array.length (Circuit.inputs c) in
  let good = Array.make (Circuit.node_count c) 0L in
  let hopeless = Array.make nf false in
  let simulate vec test_idx =
    let pats = Patterns.of_vectors ~n_inputs [| vec |] in
    Goodsim.block_into c pats 0 good;
    for fi = 0 to nf - 1 do
      if counts.(fi) < n then
        if Int64.logand (Faultsim.detect_block ws ~good (Fault_list.get fl fi)) 1L = 1L
        then begin
          counts.(fi) <- counts.(fi) + 1;
          if detected_by.(fi) < 0 then detected_by.(fi) <- test_idx
        end
    done
  in
  for pass = 1 to n do
    Array.iter
      (fun fi ->
        if counts.(fi) < pass && not hopeless.(fi) then begin
          match
            Podem.generate_in ~backtrack_limit:config.backtrack_limit ctx
              (Fault_list.get fl fi)
          with
          | Podem.Untestable ->
              hopeless.(fi) <- true;
              if pass = 1 then untestable := fi :: !untestable
          | Podem.Aborted ->
              hopeless.(fi) <- true;
              if pass = 1 then aborted := fi :: !aborted
          | Podem.Test cube ->
              let vec = fill_cube rng cube in
              let idx = !n_tests in
              tests := vec :: !tests;
              targeted := fi :: !targeted;
              incr n_tests;
              simulate vec idx
        end)
      order
  done;
  let tests_arr = Array.of_list (List.rev !tests) in
  {
    tests = Patterns.of_vectors ~n_inputs tests_arr;
    detected_by;
    targeted = Array.of_list (List.rev !targeted);
    untestable = List.rev !untestable;
    aborted = List.rev !aborted;
    stats;
    runtime_s = Unix.gettimeofday () -. t0;
  }

let run_compacting ?(config = default_config) ?(secondary_limit = 50) fl ~order =
  let c = Fault_list.circuit fl in
  let nf = Fault_list.count fl in
  check_order nf order;
  let t0 = Unix.gettimeofday () in
  let scoap = Scoap.compute c in
  let ws = Faultsim.workspace c in
  let rng = Rng.create config.seed in
  let stats = Podem.fresh_stats () in
  let ctx = Podem.context ~stats c scoap in
  let detected_by = Array.make nf (-1) in
  let untestable = ref [] and aborted = ref [] in
  let tests = ref [] and targeted = ref [] and n_tests = ref 0 in
  let n_inputs = Array.length (Circuit.inputs c) in
  let good = Array.make (Circuit.node_count c) 0L in
  let simulate_and_drop vec test_idx =
    let pats = Patterns.of_vectors ~n_inputs [| vec |] in
    Goodsim.block_into c pats 0 good;
    for fi = 0 to nf - 1 do
      if detected_by.(fi) < 0 then
        if Int64.logand (Faultsim.detect_block ws ~good (Fault_list.get fl fi)) 1L = 1L then
          detected_by.(fi) <- test_idx
    done
  in
  let cube_full cube = Array.for_all (fun t -> t <> Ternary.X) cube in
  Array.iteri
    (fun pos fi ->
      if detected_by.(fi) < 0 then begin
        match
          Podem.generate_in ~backtrack_limit:config.backtrack_limit ctx (Fault_list.get fl fi)
        with
        | Podem.Untestable -> untestable := fi :: !untestable
        | Podem.Aborted -> aborted := fi :: !aborted
        | Podem.Test cube ->
            (* Secondary targets: later undetected faults, under the
               primary cube's assignments. *)
            let cube = ref cube in
            let attempts = ref 0 in
            let rec secondary i =
              if i < nf && !attempts < secondary_limit && not (cube_full !cube) then begin
                let gi = order.(i) in
                if detected_by.(gi) < 0 && gi <> fi then begin
                  incr attempts;
                  match
                    Podem.generate_in ~backtrack_limit:config.backtrack_limit ~fixed:!cube ctx
                      (Fault_list.get fl gi)
                  with
                  | Podem.Test merged -> cube := merged
                  | Podem.Untestable | Podem.Aborted -> ()
                end;
                secondary (i + 1)
              end
            in
            secondary (pos + 1);
            let vec = fill_cube rng !cube in
            let idx = !n_tests in
            tests := vec :: !tests;
            targeted := fi :: !targeted;
            incr n_tests;
            simulate_and_drop vec idx;
            assert (detected_by.(fi) = idx)
      end)
    order;
  let tests_arr = Array.of_list (List.rev !tests) in
  {
    tests = Patterns.of_vectors ~n_inputs tests_arr;
    detected_by;
    targeted = Array.of_list (List.rev !targeted);
    untestable = List.rev !untestable;
    aborted = List.rev !aborted;
    stats;
    runtime_s = Unix.gettimeofday () -. t0;
  }

let coverage fl result =
  let nf = Fault_list.count fl in
  let n_unt = List.length result.untestable in
  let detected = Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 result.detected_by in
  if nf = n_unt then 1.0 else float_of_int detected /. float_of_int (nf - n_unt)
