(** Serial test application on a scan-stitched circuit.

    The tester's view of full scan: raise scan-enable and shift the
    state in bit by bit, drop scan-enable for one capture cycle while
    the primary inputs carry the test's PI part, then shift the
    captured response out (overlapping the next load in real flows).
    This module drives {!Seqsim} through that protocol, so the
    combinational-core tests the ATPG produces can be validated on the
    physical chain. *)

type response = {
  outputs : bool array;  (** primary outputs observed at the capture cycle *)
  captured : bool array;  (** state captured into the cells (aligned with [chain.cells]) *)
}

val apply :
  Seqsim.t -> Scan.chain -> pi_values:bool array -> state_values:bool array -> response
(** Run one full load–capture–unload sequence.  [pi_values] are the
    original primary inputs (without the scan pins); [state_values]
    align with [chain.cells].  The simulator is left with the shifted-
    out state, ready for the next call.  @raise Invalid_argument on
    width mismatches. *)

val cycles_per_test : Scan.chain -> int
(** Tester cycles one test costs without load/unload overlap:
    chain length (load) + 1 (capture) + chain length (unload). *)

val apply_combinational_test :
  Seqsim.t -> Scan.chain -> comb_inputs:bool array -> n_original_pis:int -> response
(** Convenience for vectors generated on the {!Scan.combinational}
    model, whose input order is [original PIs, then PPIs]: splits the
    vector and calls {!apply}. *)
