(** Naive scalar fault simulation — the oracle.

    One pattern, one fault, full re-evaluation of the circuit with the
    fault forced.  Quadratically slower than {!Faultsim} and used only
    to cross-check it (and for didactic examples). *)

val faulty_values : Circuit.t -> Fault.t -> bool array -> bool array
(** Per-node values of the faulty machine under the given PI
    assignment. *)

val detects : Circuit.t -> Fault.t -> bool array -> bool
(** Does the pattern detect the fault?  (Some primary output differs
    between {!Goodsim.eval_scalar} and {!faulty_values}.) *)

val detection_table : Fault_list.t -> Patterns.t -> bool array array
(** [table.(fault).(pattern)] — exhaustive oracle for [D(f)]. *)
