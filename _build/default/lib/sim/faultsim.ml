module Bitvec = Util.Bitvec

type workspace = {
  circuit : Circuit.t;
  fval : int64 array;  (* faulty value, valid iff dirty *)
  dirty : bool array;
  scheduled : bool array;
  buckets : int list array;  (* pending nodes per level *)
  mutable touched : int list;  (* nodes with dirty set *)
  mutable sched_nodes : int list;  (* nodes with scheduled set *)
}

let workspace c =
  if Circuit.has_state c then
    invalid_arg "Faultsim.workspace: circuit has flip-flops; apply Scan.combinational first";
  let n = Circuit.node_count c in
  {
    circuit = c;
    fval = Array.make n 0L;
    dirty = Array.make n false;
    scheduled = Array.make n false;
    buckets = Array.make (Circuit.depth c + 1) [];
    touched = [];
    sched_nodes = [];
  }

(* Faulty value of the injection node for the current block. *)
let injected_value ws ~good (f : Fault.t) =
  let c = ws.circuit in
  let stuck = if f.stuck_at then -1L else 0L in
  match f.site with
  | Fault.Stem _ -> stuck
  | Fault.Branch { gate; pin } ->
      let fanins = Circuit.fanins c gate in
      let k = Circuit.kind c gate in
      (* Evaluate the gate with the faulted pin forced to the stuck
         value; other pins read good values.  Mirrors
         Logic_word.eval_fanins with one override. *)
      let v i = if i = pin then stuck else good.(fanins.(i)) in
      let n = Array.length fanins in
      let fold op init =
        let acc = ref init in
        for i = 0 to n - 1 do
          acc := op !acc (v i)
        done;
        !acc
      in
      (match k with
      | Gate.Const0 | Gate.Const1 | Gate.Input ->
          invalid_arg "Faultsim: branch fault on a node without input pins"
      | Gate.Buf | Gate.Dff -> v 0
      | Gate.Not -> Int64.lognot (v 0)
      | Gate.And -> fold Int64.logand (-1L)
      | Gate.Nand -> Int64.lognot (fold Int64.logand (-1L))
      | Gate.Or -> fold Int64.logor 0L
      | Gate.Nor -> Int64.lognot (fold Int64.logor 0L)
      | Gate.Xor -> fold Int64.logxor 0L
      | Gate.Xnor -> Int64.lognot (fold Int64.logxor 0L))

let schedule ws node =
  if not ws.scheduled.(node) then begin
    ws.scheduled.(node) <- true;
    ws.sched_nodes <- node :: ws.sched_nodes;
    let l = Circuit.level ws.circuit node in
    ws.buckets.(l) <- node :: ws.buckets.(l)
  end

let eval_faulty ws ~good node =
  let c = ws.circuit in
  let fanins = Circuit.fanins c node in
  let n = Array.length fanins in
  let v i =
    let f = fanins.(i) in
    if ws.dirty.(f) then ws.fval.(f) else good.(f)
  in
  let fold op init =
    let acc = ref init in
    for i = 0 to n - 1 do
      acc := op !acc (v i)
    done;
    !acc
  in
  match Circuit.kind c node with
  | Gate.Const0 -> 0L
  | Gate.Const1 -> -1L
  | Gate.Input -> good.(node)
  | Gate.Buf | Gate.Dff -> v 0
  | Gate.Not -> Int64.lognot (v 0)
  | Gate.And -> fold Int64.logand (-1L)
  | Gate.Nand -> Int64.lognot (fold Int64.logand (-1L))
  | Gate.Or -> fold Int64.logor 0L
  | Gate.Nor -> Int64.lognot (fold Int64.logor 0L)
  | Gate.Xor -> fold Int64.logxor 0L
  | Gate.Xnor -> Int64.lognot (fold Int64.logxor 0L)

let detect_block ws ~good (f : Fault.t) =
  let c = ws.circuit in
  let detect = ref 0L in
  let record node value =
    if value <> good.(node) then begin
      ws.fval.(node) <- value;
      if not ws.dirty.(node) then begin
        ws.dirty.(node) <- true;
        ws.touched <- node :: ws.touched
      end;
      if Circuit.is_output c node then
        detect := Int64.logor !detect (Int64.logxor value good.(node));
      Array.iter (fun s -> schedule ws s) (Circuit.fanouts c node)
    end
  in
  let n0 = Fault.site_node f in
  record n0 (injected_value ws ~good f);
  (* Propagate by increasing level; all fanins of a level-L node are
     final before L is processed. *)
  if ws.sched_nodes <> [] then
    for l = 0 to Array.length ws.buckets - 1 do
      let pending = ws.buckets.(l) in
      if pending <> [] then begin
        ws.buckets.(l) <- [];
        List.iter
          (fun node -> if node <> n0 then record node (eval_faulty ws ~good node))
          pending
      end
    done;
  (* Reset scratch state. *)
  List.iter (fun node -> ws.dirty.(node) <- false) ws.touched;
  List.iter (fun node -> ws.scheduled.(node) <- false) ws.sched_nodes;
  ws.touched <- [];
  ws.sched_nodes <- [];
  !detect

let block_mask pats b =
  let cnt = Patterns.count pats - (b * 64) in
  if cnt >= 64 then -1L else Int64.sub (Int64.shift_left 1L cnt) 1L

let detection_sets fl pats =
  let c = Fault_list.circuit fl in
  let ws = workspace c in
  let nf = Fault_list.count fl in
  let cnt = Patterns.count pats in
  let dsets = Array.init nf (fun _ -> Bitvec.create cnt) in
  let good = Array.make (Circuit.node_count c) 0L in
  for b = 0 to Patterns.blocks pats - 1 do
    Goodsim.block_into c pats b good;
    let mask = block_mask pats b in
    for fi = 0 to nf - 1 do
      let d = Int64.logand (detect_block ws ~good (Fault_list.get fl fi)) mask in
      if d <> 0L then (Bitvec.words dsets.(fi)).(b) <- d
    done
  done;
  dsets

let ndet dsets pats =
  let counts = Array.make (Patterns.count pats) 0 in
  Array.iter (fun d -> Bitvec.iter_set d (fun p -> counts.(p) <- counts.(p) + 1)) dsets;
  counts

type drop_result = { first_detection : int array; detected : int }

let with_dropping fl pats =
  let c = Fault_list.circuit fl in
  let ws = workspace c in
  let nf = Fault_list.count fl in
  let first = Array.make nf (-1) in
  let detected = ref 0 in
  let alive = ref (List.init nf Fun.id) in
  let good = Array.make (Circuit.node_count c) 0L in
  let b = ref 0 in
  let nblocks = Patterns.blocks pats in
  while !b < nblocks && !alive <> [] do
    Goodsim.block_into c pats !b good;
    let mask = block_mask pats !b in
    alive :=
      List.filter
        (fun fi ->
          let d = Int64.logand (detect_block ws ~good (Fault_list.get fl fi)) mask in
          if d = 0L then true
          else begin
            let low = Int64.logand d (Int64.neg d) in
            let rec idx w i = if w = 1L then i else idx (Int64.shift_right_logical w 1) (i + 1) in
            first.(fi) <- (!b * 64) + idx low 0;
            incr detected;
            false
          end)
        !alive;
    incr b
  done;
  { first_detection = first; detected = !detected }

let popcount_word x =
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)

let n_detection fl pats ~n =
  if n <= 0 then invalid_arg "Faultsim.n_detection: n must be positive";
  let c = Fault_list.circuit fl in
  let ws = workspace c in
  let nf = Fault_list.count fl in
  let counts = Array.make nf 0 in
  let good = Array.make (Circuit.node_count c) 0L in
  let alive = ref (List.init nf Fun.id) in
  let b = ref 0 in
  let nblocks = Patterns.blocks pats in
  while !b < nblocks && !alive <> [] do
    Goodsim.block_into c pats !b good;
    let mask = block_mask pats !b in
    alive :=
      List.filter
        (fun fi ->
          let d = Int64.logand (detect_block ws ~good (Fault_list.get fl fi)) mask in
          if d <> 0L then counts.(fi) <- min n (counts.(fi) + popcount_word d);
          counts.(fi) < n)
        !alive;
    incr b
  done;
  counts

let detection_sets_capped fl pats ~n =
  if n <= 0 then invalid_arg "Faultsim.detection_sets_capped: n must be positive";
  let c = Fault_list.circuit fl in
  let ws = workspace c in
  let nf = Fault_list.count fl in
  let cnt = Patterns.count pats in
  let dsets = Array.init nf (fun _ -> Bitvec.create cnt) in
  let counts = Array.make nf 0 in
  let good = Array.make (Circuit.node_count c) 0L in
  let alive = ref (List.init nf Fun.id) in
  let b = ref 0 in
  let nblocks = Patterns.blocks pats in
  while !b < nblocks && !alive <> [] do
    Goodsim.block_into c pats !b good;
    let mask = block_mask pats !b in
    alive :=
      List.filter
        (fun fi ->
          let d = Int64.logand (detect_block ws ~good (Fault_list.get fl fi)) mask in
          if d <> 0L then begin
            (* Keep only the earliest detections up to the cap. *)
            let kept = ref 0L and w = ref d in
            while !w <> 0L && counts.(fi) < n do
              let low = Int64.logand !w (Int64.neg !w) in
              kept := Int64.logor !kept low;
              counts.(fi) <- counts.(fi) + 1;
              w := Int64.logxor !w low
            done;
            (Bitvec.words dsets.(fi)).(!b) <- !kept
          end;
          counts.(fi) < n)
        !alive;
    incr b
  done;
  dsets

let detects c f pi_values =
  if Array.length pi_values <> Array.length (Circuit.inputs c) then
    invalid_arg "Faultsim.detects: input width mismatch";
  let pats = Patterns.of_vectors ~n_inputs:(Array.length pi_values) [| pi_values |] in
  let ws = workspace c in
  let good = Goodsim.block c pats 0 in
  Int64.logand (detect_block ws ~good f) 1L = 1L
