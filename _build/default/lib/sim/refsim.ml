let faulty_values c (f : Fault.t) pi_values =
  let inputs = Circuit.inputs c in
  if Array.length pi_values <> Array.length inputs then
    invalid_arg "Refsim.faulty_values: input width mismatch";
  let values = Array.make (Circuit.node_count c) false in
  Array.iteri (fun i pi -> values.(pi) <- pi_values.(i)) inputs;
  let eval node =
    let fanins = Circuit.fanins c node in
    let pin_value p =
      match f.site with
      | Fault.Branch { gate; pin } when gate = node && pin = p -> f.stuck_at
      | _ -> values.(fanins.(p))
    in
    Boolean.eval_array (Circuit.kind c node) (Array.init (Array.length fanins) pin_value)
  in
  Array.iter
    (fun node ->
      (match Circuit.kind c node with Gate.Input -> () | _ -> values.(node) <- eval node);
      (* A stem fault overrides the node's own output. *)
      match f.site with
      | Fault.Stem s when s = node -> values.(node) <- f.stuck_at
      | _ -> ())
    (Circuit.topological_order c);
  values

let detects c f pi_values =
  let good = Goodsim.eval_scalar c pi_values in
  let bad = faulty_values c f pi_values in
  Array.exists (fun o -> good.(o) <> bad.(o)) (Circuit.outputs c)

let detection_table fl pats =
  let c = Fault_list.circuit fl in
  Array.init (Fault_list.count fl) (fun fi ->
      Array.init (Patterns.count pats) (fun p ->
          detects c (Fault_list.get fl fi) (Patterns.vector pats p)))
