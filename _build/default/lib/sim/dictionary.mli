(** Pass/fail fault dictionaries and fault diagnosis.

    A dictionary stores, for every modelled fault, its {e signature} —
    the set of tests the circuit fails when that fault is present.
    Comparing a failing chip's observed signature against the
    dictionary locates candidate faults: the downstream use of the
    steep-coverage test sets the paper's ordering produces (a defective
    chip is identified after few tests when early tests detect many
    faults). *)

type t

val build : Fault_list.t -> Patterns.t -> t
(** Full (non-dropping) fault simulation of the test set. *)

val faults : t -> Fault_list.t
val tests : t -> Patterns.t

val signature : t -> int -> Util.Bitvec.t
(** The failing-test set of one fault. *)

val signature_of_response : t -> (int -> bool array) -> Util.Bitvec.t
(** Build the observed signature of a device under test: [response t]
    must give the device's output vector for test [t] (in
    [Circuit.outputs] order); tests whose response differs from the
    fault-free circuit are marked failing. *)

val diagnose : t -> Util.Bitvec.t -> int list
(** Faults whose signature exactly matches the observed one (empty if
    the defect is not in the modelled universe). *)

val diagnose_nearest : t -> Util.Bitvec.t -> n:int -> (int * int) list
(** The [n] faults with smallest Hamming distance between signature
    and observation, best first, as [(fault, distance)] — useful when
    the defect only approximates a modelled fault. *)

val equivalence_classes : t -> int list list
(** Groups of faults the test set cannot distinguish (identical
    non-empty signatures).  Singleton groups are fully diagnosable. *)

val resolution : t -> float
(** Fraction of detected faults that are uniquely diagnosable. *)
