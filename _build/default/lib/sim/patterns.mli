(** Ordered sets of input vectors.

    Storage is transposed for pattern-parallel simulation: one bit
    column per primary input, indexed by pattern number, so the
    simulator can lift 64 consecutive patterns into an [int64] word per
    input with a single array access.

    Pattern [p]'s value for input [i] is [value t ~input:i ~pattern:p].
    For {!exhaustive} sets, pattern [u] is the [n]-bit binary expansion
    of [u] with the {e first declared input as the most significant
    bit}, matching the paper's "vector given by its decimal
    representation" convention for [lion]. *)

type t

val n_inputs : t -> int
val count : t -> int

val value : t -> input:int -> pattern:int -> bool
val column : t -> int -> Util.Bitvec.t
(** The full bit column of one input; do not mutate. *)

val word : t -> input:int -> block:int -> int64
(** Bits [0..63] of the result are patterns [64*block .. 64*block+63];
    patterns beyond [count t] read as 0. *)

val blocks : t -> int
(** Number of 64-pattern blocks, [ceil (count / 64)]. *)

val of_columns : Util.Bitvec.t array -> t
(** @raise Invalid_argument if column lengths differ or no columns. *)

val of_vectors : n_inputs:int -> bool array array -> t
(** Row-major construction: element [p].(i) is input [i] of pattern
    [p]. *)

val vector : t -> int -> bool array
(** Row extraction (input order). *)

val random : Util.Rng.t -> n_inputs:int -> count:int -> t

val exhaustive : n_inputs:int -> t
(** All [2^n] vectors in increasing decimal order.
    @raise Invalid_argument if [n_inputs > 24]. *)

val prefix : t -> int -> t
(** First [n] patterns. *)

val concat : t -> t -> t
(** Append pattern sets over the same inputs. *)

val decimal : t -> int -> int
(** Decimal representation of a pattern (first input = MSB).
    @raise Invalid_argument if [n_inputs > 62]. *)

val to_strings : t -> string array
(** Each pattern as a ['0'/'1'] string in input order. *)

val of_strings : string array -> t
(** Parse ['0'/'1'] rows (as produced by {!to_strings}).
    @raise Invalid_argument on ragged rows, other characters, or an
    empty array (the input width would be unknown). *)

val load_file : string -> t
(** Read one vector per line, ignoring blank lines and [#] comments. *)

val save_file : string -> t -> unit
