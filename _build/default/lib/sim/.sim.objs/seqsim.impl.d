lib/sim/seqsim.ml: Array Boolean Circuit Gate List
