lib/sim/testbench.ml: Array List Scan Seqsim
