lib/sim/goodsim.mli: Circuit Patterns Util
