lib/sim/refsim.ml: Array Boolean Circuit Fault Fault_list Gate Goodsim Patterns
