lib/sim/testbench.mli: Scan Seqsim
