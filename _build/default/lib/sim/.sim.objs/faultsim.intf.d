lib/sim/faultsim.mli: Circuit Fault Fault_list Patterns Util
