lib/sim/patterns.ml: Array Fun List Printf String Util
