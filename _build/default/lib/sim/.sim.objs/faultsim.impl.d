lib/sim/faultsim.ml: Array Circuit Fault Fault_list Fun Gate Goodsim Int64 List Patterns Util
