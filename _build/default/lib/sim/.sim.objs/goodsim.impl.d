lib/sim/goodsim.ml: Array Boolean Circuit Gate Int64 Logic_word Patterns Util
