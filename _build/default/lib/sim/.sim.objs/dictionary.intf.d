lib/sim/dictionary.mli: Fault_list Patterns Util
