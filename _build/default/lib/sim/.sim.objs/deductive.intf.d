lib/sim/deductive.mli: Fault_list Patterns Util
