lib/sim/deductive.ml: Array Circuit Fault Fault_list Gate Goodsim Hashtbl List Option Patterns Util
