lib/sim/patterns.mli: Util
