lib/sim/seqsim.mli: Circuit
