lib/sim/refsim.mli: Circuit Fault Fault_list Patterns
