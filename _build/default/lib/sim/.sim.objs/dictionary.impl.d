lib/sim/dictionary.ml: Array Circuit Fault_list Faultsim Goodsim Hashtbl Int64 List Option Patterns String Util
