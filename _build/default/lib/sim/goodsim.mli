(** Fault-free circuit simulation.

    The bit-parallel entry points process 64 patterns per call; the
    scalar entry point is the slow reference the test-suite checks the
    fast paths against. *)

val block : Circuit.t -> Patterns.t -> int -> int64 array
(** [block c pats b] simulates pattern block [b] (patterns
    [64b .. 64b+63]) and returns one value word per node, indexed by
    node id.  The circuit must be combinational. *)

val block_into : Circuit.t -> Patterns.t -> int -> int64 array -> unit
(** As {!block}, writing into a caller-owned array of size
    [Circuit.node_count] (no allocation per block). *)

val outputs : Circuit.t -> Patterns.t -> Util.Bitvec.t array
(** Per primary output (in [Circuit.outputs] order), the bit column of
    its values across all patterns. *)

val eval_scalar : Circuit.t -> bool array -> bool array
(** Naive single-pattern reference: input values (in PI declaration
    order) to per-node values.  @raise Invalid_argument on width
    mismatch. *)
