type response = { outputs : bool array; captured : bool array }

let cycles_per_test (chain : Scan.chain) = (2 * Array.length chain.Scan.cells) + 1

let apply sim (chain : Scan.chain) ~pi_values ~state_values =
  let cells = Array.length chain.Scan.cells in
  if Array.length state_values <> cells then
    invalid_arg "Testbench.apply: state width mismatch";
  let n_pis_total = pi_values |> Array.length |> ( + ) 2 in
  (* Build a full input vector: original PIs, scan_in, scan_enable. *)
  let vec ~scan_in ~enable =
    let v = Array.make n_pis_total false in
    Array.blit pi_values 0 v 0 (Array.length pi_values);
    v.(chain.Scan.scan_in) <- scan_in;
    v.(chain.Scan.scan_enable) <- enable;
    v
  in
  (* Load: after [cells] shift cycles, the bit fed at cycle t sits in
     cell [cells - 1 - t]; feed the last cell's value first. *)
  for t = 0 to cells - 1 do
    ignore (Seqsim.step sim (vec ~scan_in:state_values.(cells - 1 - t) ~enable:true))
  done;
  (* Capture: observe POs with scan disabled, then clock once. *)
  let capture_vec = vec ~scan_in:false ~enable:false in
  let all_outputs = Seqsim.peek_outputs sim capture_vec in
  ignore (Seqsim.step sim capture_vec);
  (* Unload: the last cell appears on scan-out first. *)
  let captured = Array.make cells false in
  for t = 0 to cells - 1 do
    let outs = Seqsim.peek_outputs sim (vec ~scan_in:false ~enable:true) in
    captured.(cells - 1 - t) <- outs.(chain.Scan.scan_out);
    ignore (Seqsim.step sim (vec ~scan_in:false ~enable:true))
  done;
  (* Strip the scan-out position from the observed POs. *)
  let outputs =
    Array.of_list
      (List.filteri
         (fun i _ -> i <> chain.Scan.scan_out)
         (Array.to_list all_outputs))
  in
  { outputs; captured }

let apply_combinational_test sim chain ~comb_inputs ~n_original_pis =
  let cells = Array.length chain.Scan.cells in
  if Array.length comb_inputs <> n_original_pis + cells then
    invalid_arg "Testbench.apply_combinational_test: width mismatch";
  let pi_values = Array.sub comb_inputs 0 n_original_pis in
  let state_values = Array.sub comb_inputs n_original_pis cells in
  apply sim chain ~pi_values ~state_values
