module Bitvec = Util.Bitvec
module Rng = Util.Rng

type t = { n_inputs : int; count : int; columns : Bitvec.t array }

let n_inputs t = t.n_inputs
let count t = t.count

let value t ~input ~pattern = Bitvec.get t.columns.(input) pattern
let column t i = t.columns.(i)

let word t ~input ~block =
  let w = Bitvec.words t.columns.(input) in
  if block < 0 || block >= Array.length w then invalid_arg "Patterns.word: block out of range";
  w.(block)

let blocks t = (t.count + 63) / 64

let of_columns columns =
  if Array.length columns = 0 then invalid_arg "Patterns.of_columns: no columns";
  let len = Bitvec.length columns.(0) in
  Array.iter
    (fun c -> if Bitvec.length c <> len then invalid_arg "Patterns.of_columns: ragged columns")
    columns;
  { n_inputs = Array.length columns; count = len; columns }

let of_vectors ~n_inputs rows =
  let cnt = Array.length rows in
  let columns = Array.init n_inputs (fun _ -> Bitvec.create cnt) in
  Array.iteri
    (fun p row ->
      if Array.length row <> n_inputs then
        invalid_arg "Patterns.of_vectors: row width mismatch";
      Array.iteri (fun i v -> if v then Bitvec.set columns.(i) p true) row)
    rows;
  { n_inputs; count = cnt; columns }

let vector t p = Array.init t.n_inputs (fun i -> value t ~input:i ~pattern:p)

let random rng ~n_inputs ~count =
  { n_inputs; count; columns = Array.init n_inputs (fun _ -> Bitvec.random rng count) }

let exhaustive ~n_inputs =
  if n_inputs > 24 then invalid_arg "Patterns.exhaustive: too many inputs";
  if n_inputs <= 0 then invalid_arg "Patterns.exhaustive: need at least one input";
  let cnt = 1 lsl n_inputs in
  let columns = Array.init n_inputs (fun _ -> Bitvec.create cnt) in
  for u = 0 to cnt - 1 do
    for i = 0 to n_inputs - 1 do
      (* First input is the most significant bit of u. *)
      if (u lsr (n_inputs - 1 - i)) land 1 = 1 then Bitvec.set columns.(i) u true
    done
  done;
  { n_inputs; count = cnt; columns }

let prefix t n =
  if n < 0 || n > t.count then invalid_arg "Patterns.prefix";
  let columns =
    Array.map
      (fun c ->
        let c' = Bitvec.create n in
        for p = 0 to n - 1 do
          if Bitvec.get c p then Bitvec.set c' p true
        done;
        c')
      t.columns
  in
  { t with count = n; columns }

let concat a b =
  if a.n_inputs <> b.n_inputs then invalid_arg "Patterns.concat: input width mismatch";
  let cnt = a.count + b.count in
  let columns =
    Array.init a.n_inputs (fun i ->
        let c = Bitvec.create cnt in
        for p = 0 to a.count - 1 do
          if Bitvec.get a.columns.(i) p then Bitvec.set c p true
        done;
        for p = 0 to b.count - 1 do
          if Bitvec.get b.columns.(i) p then Bitvec.set c (a.count + p) true
        done;
        c)
  in
  { n_inputs = a.n_inputs; count = cnt; columns }

let decimal t p =
  if t.n_inputs > 62 then invalid_arg "Patterns.decimal: too many inputs";
  let v = ref 0 in
  for i = 0 to t.n_inputs - 1 do
    v := (!v lsl 1) lor (if value t ~input:i ~pattern:p then 1 else 0)
  done;
  !v

let to_strings t =
  Array.init t.count (fun p ->
      String.init t.n_inputs (fun i -> if value t ~input:i ~pattern:p then '1' else '0'))

let of_strings rows =
  if Array.length rows = 0 then invalid_arg "Patterns.of_strings: empty";
  let w = String.length rows.(0) in
  let parse r =
    if String.length r <> w then invalid_arg "Patterns.of_strings: ragged rows";
    Array.init w (fun i ->
        match r.[i] with
        | '0' -> false
        | '1' -> true
        | c -> invalid_arg (Printf.sprintf "Patterns.of_strings: bad character %C" c))
  in
  of_vectors ~n_inputs:w (Array.map parse rows)

let load_file path =
  let ic = open_in path in
  let rows =
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        let acc = ref [] in
        (try
           while true do
             let line = String.trim (input_line ic) in
             if line <> "" && line.[0] <> '#' then acc := line :: !acc
           done
         with End_of_file -> ());
        Array.of_list (List.rev !acc))
  in
  of_strings rows

let save_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      Array.iter (fun s -> output_string oc (s ^ "\n")) (to_strings t))
