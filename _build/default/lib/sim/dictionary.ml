module Bitvec = Util.Bitvec

type t = {
  fl : Fault_list.t;
  pats : Patterns.t;
  signatures : Bitvec.t array;
  good_outputs : bool array array;  (* per test, PO values *)
}

let build fl pats =
  let c = Fault_list.circuit fl in
  let signatures = Faultsim.detection_sets fl pats in
  let outs = Circuit.outputs c in
  let good_outputs =
    Array.init (Patterns.count pats) (fun p ->
        let v = Goodsim.eval_scalar c (Patterns.vector pats p) in
        Array.map (fun o -> v.(o)) outs)
  in
  { fl; pats; signatures; good_outputs }

let faults t = t.fl
let tests t = t.pats
let signature t fi = t.signatures.(fi)

let signature_of_response t response =
  let obs = Bitvec.create (Patterns.count t.pats) in
  for p = 0 to Patterns.count t.pats - 1 do
    if response p <> t.good_outputs.(p) then Bitvec.set obs p true
  done;
  obs

let diagnose t obs =
  let acc = ref [] in
  for fi = Fault_list.count t.fl - 1 downto 0 do
    if Bitvec.equal t.signatures.(fi) obs then acc := fi :: !acc
  done;
  !acc

let hamming a b =
  let d = Bitvec.copy a in
  (* d <- (a \ b) + (b \ a) counted separately to avoid xor primitive *)
  Bitvec.diff_into ~dst:d b;
  let d2 = Bitvec.copy b in
  Bitvec.diff_into ~dst:d2 a;
  Bitvec.popcount d + Bitvec.popcount d2

let diagnose_nearest t obs ~n =
  let scored =
    List.init (Fault_list.count t.fl) (fun fi -> (fi, hamming t.signatures.(fi) obs))
  in
  let sorted = List.sort (fun (a, da) (b, db) -> if da <> db then compare da db else compare a b) scored in
  List.filteri (fun i _ -> i < n) sorted

let equivalence_classes t =
  let groups : (string, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun fi s ->
      if not (Bitvec.is_zero s) then begin
        let key =
          String.concat ","
            (Array.to_list (Array.map Int64.to_string (Bitvec.words s)))
        in
        Hashtbl.replace groups key
          (fi :: Option.value ~default:[] (Hashtbl.find_opt groups key))
      end)
    t.signatures;
  Hashtbl.fold (fun _ g acc -> List.rev g :: acc) groups []
  |> List.sort compare

let resolution t =
  let classes = equivalence_classes t in
  let detected = List.fold_left (fun a g -> a + List.length g) 0 classes in
  let unique = List.fold_left (fun a g -> if List.length g = 1 then a + 1 else a) 0 classes in
  if detected = 0 then 1.0 else float_of_int unique /. float_of_int detected
