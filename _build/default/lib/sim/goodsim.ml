module Bitvec = Util.Bitvec

let check_comb c =
  if Circuit.has_state c then
    invalid_arg "Goodsim: circuit has flip-flops; apply Scan.combinational first"

let block_into c pats b values =
  check_comb c;
  if Array.length values <> Circuit.node_count c then
    invalid_arg "Goodsim.block_into: bad buffer size";
  let inputs = Circuit.inputs c in
  Array.iteri (fun i pi -> values.(pi) <- Patterns.word pats ~input:i ~block:b) inputs;
  Array.iter
    (fun n ->
      match Circuit.kind c n with
      | Gate.Input -> ()
      | k -> values.(n) <- Logic_word.eval_fanins k ~values (Circuit.fanins c n))
    (Circuit.topological_order c)

let block c pats b =
  let values = Array.make (Circuit.node_count c) 0L in
  block_into c pats b values;
  values

let outputs c pats =
  let outs = Circuit.outputs c in
  let cnt = Patterns.count pats in
  let cols = Array.map (fun _ -> Bitvec.create cnt) outs in
  let values = Array.make (Circuit.node_count c) 0L in
  for b = 0 to Patterns.blocks pats - 1 do
    block_into c pats b values;
    Array.iteri
      (fun oi o ->
        let w = values.(o) in
        let base = b * 64 in
        let hi = min 64 (cnt - base) in
        for j = 0 to hi - 1 do
          if Int64.logand (Int64.shift_right_logical w j) 1L = 1L then
            Bitvec.set cols.(oi) (base + j) true
        done)
      outs
  done;
  cols

let eval_scalar c pi_values =
  check_comb c;
  let inputs = Circuit.inputs c in
  if Array.length pi_values <> Array.length inputs then
    invalid_arg "Goodsim.eval_scalar: input width mismatch";
  let values = Array.make (Circuit.node_count c) false in
  Array.iteri (fun i pi -> values.(pi) <- pi_values.(i)) inputs;
  Array.iter
    (fun n ->
      match Circuit.kind c n with
      | Gate.Input -> ()
      | k -> values.(n) <- Boolean.eval_array k (Array.map (fun f -> values.(f)) (Circuit.fanins c n)))
    (Circuit.topological_order c);
  values
