(** Deductive fault simulation (Armstrong 1972).

    One pass per pattern: simulate the fault-free circuit, then
    propagate {e fault lists} — for every line, the set of faults that
    would flip it under this pattern.  A gate with some inputs at its
    controlling value flips exactly when every controlling input flips
    and no non-controlling input does (intersection minus union); a
    gate with no controlling inputs flips when any input flips
    (union); parity gates flip on an odd number of flipped inputs
    (symmetric difference).

    This is a second, independent implementation of fault simulation
    semantics; the test suite checks it produces bit-identical
    detection sets to the event-driven {!Faultsim}, and the ablation
    bench compares their cost profiles (deductive does all faults in
    one pass but one pattern at a time; PPSFP does 64 patterns at a
    time but one fault per propagation). *)

val fault_lists : Fault_list.t -> bool array -> Util.Bitvec.t array
(** [fault_lists fl vec] simulates one input vector and returns, per
    node, the set of faults (as indices into [fl]) that flip that
    node's value.  The circuit must be combinational. *)

val detected_by_pattern : Fault_list.t -> bool array -> Util.Bitvec.t
(** Faults flipping at least one primary output — the union of the
    output fault lists. *)

val detection_sets : Fault_list.t -> Patterns.t -> Util.Bitvec.t array
(** Per fault, its detection set over the pattern set — same contract
    as {!Faultsim.detection_sets}. *)
