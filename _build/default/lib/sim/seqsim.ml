type t = {
  c : Circuit.t;
  dffs : int array;  (* node ids of the flip-flops *)
  state_bits : bool array;  (* current Q values, aligned with dffs *)
  values : bool array;  (* scratch: per-node values for one cycle *)
}

let create c =
  let dffs = ref [] in
  Circuit.iter_nodes c (fun i -> if Circuit.kind c i = Gate.Dff then dffs := i :: !dffs);
  let dffs = Array.of_list (List.rev !dffs) in
  {
    c;
    dffs;
    state_bits = Array.make (Array.length dffs) false;
    values = Array.make (Circuit.node_count c) false;
  }

let reset t = Array.fill t.state_bits 0 (Array.length t.state_bits) false

let evaluate t inputs =
  let c = t.c in
  let pis = Circuit.inputs c in
  if Array.length inputs <> Array.length pis then
    invalid_arg "Seqsim.step: input width mismatch";
  Array.iteri (fun i pi -> t.values.(pi) <- inputs.(i)) pis;
  Array.iteri (fun i d -> t.values.(d) <- t.state_bits.(i)) t.dffs;
  Array.iter
    (fun n ->
      match Circuit.kind c n with
      | Gate.Input | Gate.Dff -> ()
      | k ->
          t.values.(n) <-
            Boolean.eval_array k (Array.map (fun f -> t.values.(f)) (Circuit.fanins c n)))
    (Circuit.topological_order c)

let peek_outputs t inputs =
  evaluate t inputs;
  Array.map (fun o -> t.values.(o)) (Circuit.outputs t.c)

let step t inputs =
  evaluate t inputs;
  let outs = Array.map (fun o -> t.values.(o)) (Circuit.outputs t.c) in
  (* Clock edge: every DFF samples its data pin. *)
  let next = Array.map (fun d -> t.values.((Circuit.fanins t.c d).(0))) t.dffs in
  Array.blit next 0 t.state_bits 0 (Array.length next);
  outs

let state t =
  Array.mapi (fun i d -> (Circuit.name t.c d, t.state_bits.(i))) t.dffs

let run t seq = List.map (step t) seq
