(** Cycle-accurate simulation of sequential netlists.

    Flip-flops hold one bit of state; each {!step} evaluates the
    combinational logic with the current state, samples the primary
    outputs, and clocks the flip-flops (all DFFs share one implicit
    clock, as in the ISCAS-89 benchmarks).  Used to validate the FSM
    synthesis path against transition-table semantics, and useful on
    its own for driving sequential examples. *)

type t

val create : Circuit.t -> t
(** All flip-flops start at 0.  Combinational circuits are legal (the
    simulator then has no state). *)

val reset : t -> unit
(** Return every flip-flop to 0. *)

val step : t -> bool array -> bool array
(** [step t inputs] evaluates one clock cycle: returns the primary
    output values (in [Circuit.outputs] order) before the clock edge,
    then advances the state.  @raise Invalid_argument on input width
    mismatch. *)

val peek_outputs : t -> bool array -> bool array
(** Evaluate outputs for the given inputs {e without} clocking. *)

val state : t -> (string * bool) array
(** Current flip-flop values, by DFF name. *)

val run : t -> bool array list -> bool array list
(** Feed an input sequence; collect the output vector of every
    cycle. *)
