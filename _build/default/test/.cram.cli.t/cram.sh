  $ adi-atpg stats c17
  $ adi-atpg faults c17
  $ adi-atpg sim c17 -n 64 --seed 3
  $ adi-atpg adi lion
  $ adi-atpg order lion --order 0dynm -n 5
  $ adi-atpg atpg c17 --order 0dynm | head -5
  $ adi-atpg stats nonesuch
  $ adi-atpg gen --pis 4 --gates 6 --seed 9
  $ adi-atpg atpg c17 --order dynm -o vecs.txt | grep tests
  $ adi-atpg coverage c17 --tests vecs.txt
  $ cat > toggle.bench <<'BENCH'
  > INPUT(a)
  > OUTPUT(o)
  > q = DFF(n)
  > n = XOR(a, q)
  > o = BUF(n)
  > BENCH
  $ adi-atpg scan-insert toggle.bench scanned.bench
  $ adi-atpg convert c17 c17.blif
  $ adi-atpg stats c17.blif
