(* Tests for the experiment harness: the report formatters produce the
   paper's artefacts from real (small) runs, and the shared evaluation
   machinery is consistent. *)

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A small evaluation reused by several cases (lion: fast). *)
let lion_eval =
  lazy
    (Evaluation.evaluate ~paper_name:"lion" (Kiss.to_combinational (Kiss.lion ())))

let table1_mentions_all_vectors () =
  let s = Reports.table1 () in
  check Alcotest.bool "has title" true (contains s "Table 1");
  check Alcotest.bool "has ndet row" true (contains s "ndet(u)");
  check Alcotest.bool "has worked examples" true (contains s "ADI(f)");
  check Alcotest.bool "has dynamic steps" true (contains s "step 4")

let table4_row_shape () =
  let ev = Lazy.force lion_eval in
  let s = Reports.table4 [ ev ] in
  check Alcotest.bool "title" true (contains s "Table 4");
  check Alcotest.bool "row" true (contains s "lion");
  (* lion has 4 inputs. *)
  check Alcotest.bool "inp column" true (contains s "4")

let table5_has_average () =
  let ev = Lazy.force lion_eval in
  let s = Reports.table5 [ ev ] in
  check Alcotest.bool "title" true (contains s "Table 5");
  check Alcotest.bool "average row" true (contains s "average")

let table5_counts_match_runs () =
  let ev = Lazy.force lion_eval in
  let s = Reports.table5 [ ev ] in
  let n = Pipeline.test_count (Evaluation.run ev Ordering.Dynm0) in
  check Alcotest.bool "0dynm count appears" true (contains s (string_of_int n))

let table6_table7_ratios () =
  let ev = Lazy.force lion_eval in
  let s6 = Reports.table6 [ ev ] and s7 = Reports.table7 [ ev ] in
  check Alcotest.bool "t6 title" true (contains s6 "Table 6");
  check Alcotest.bool "t7 title" true (contains s7 "Table 7");
  (* orig column is 1.000 by construction. *)
  check Alcotest.bool "t6 unit ratio" true (contains s6 "1.000");
  check Alcotest.bool "t7 unit ratio" true (contains s7 "1.000")

let figure1_has_markers () =
  let ev = Lazy.force lion_eval in
  let s = Reports.figure1 ev in
  check Alcotest.bool "title" true (contains s "Figure 1");
  check Alcotest.bool "legend orig" true (contains s "o - orig");
  check Alcotest.bool "legend dynm" true (contains s "d - dynm");
  check Alcotest.bool "legend 0dynm" true (contains s "z - 0dynm")

let evaluation_is_consistent () =
  let ev = Lazy.force lion_eval in
  (* AVE ratio of orig against itself is exactly 1. *)
  check (Alcotest.float 1e-9) "orig ave ratio" 1.0 (Evaluation.ave_ratio ev Ordering.Orig);
  check (Alcotest.float 1e-9) "orig rt ratio" 1.0
    (Evaluation.runtime_ratio ev Ordering.Orig);
  let curve = Evaluation.curve ev Ordering.Orig in
  check Alcotest.bool "curve nonempty" true (Coverage.tests curve > 0)

let ablation_u_renders () =
  let s = Reports.ablation_u (Kiss.to_combinational (Kiss.lion ())) ~seed:1 in
  check Alcotest.bool "title" true (contains s "Ablation A2");
  check Alcotest.bool "has rows" true (contains s "0.90")

let ablation_static_renders () =
  let ev =
    Evaluation.evaluate
      ~orders:[ Ordering.Decr; Ordering.Decr0; Ordering.Dynm; Ordering.Dynm0 ]
      ~paper_name:"lion"
      (Kiss.to_combinational (Kiss.lion ()))
  in
  let s = Reports.ablation_static [ ev ] in
  check Alcotest.bool "title" true (contains s "Ablation A1");
  check Alcotest.bool "row" true (contains s "lion")

let harness_rejects_unknown () =
  check Alcotest.bool "unknown experiment" true
    (try
       ignore (Harness.run_experiment ~full:false "nope");
       false
     with Invalid_argument _ -> true)

let harness_names_cover_run () =
  (* every name except "all" renders something; use only the cheap ones
     here to keep the suite fast. *)
  List.iter
    (fun w ->
      let s = Harness.run_experiment ~full:false w in
      check Alcotest.bool (w ^ " nonempty") true (String.length s > 0))
    [ "table1" ]

let () =
  Alcotest.run "experiments"
    [
      ( "reports",
        [
          Alcotest.test_case "table1" `Quick table1_mentions_all_vectors;
          Alcotest.test_case "table4" `Quick table4_row_shape;
          Alcotest.test_case "table5 average" `Quick table5_has_average;
          Alcotest.test_case "table5 counts" `Quick table5_counts_match_runs;
          Alcotest.test_case "table6/7" `Quick table6_table7_ratios;
          Alcotest.test_case "figure1" `Quick figure1_has_markers;
          Alcotest.test_case "ablation A1" `Quick ablation_static_renders;
          Alcotest.test_case "ablation A2" `Quick ablation_u_renders;
        ] );
      ( "harness",
        [
          Alcotest.test_case "rejects unknown" `Quick harness_rejects_unknown;
          Alcotest.test_case "runs table1" `Quick harness_names_cover_run;
        ] );
      ( "evaluation",
        [ Alcotest.test_case "consistency" `Quick evaluation_is_consistent ] );
    ]
