test/test_netlist.ml: Alcotest Array Bench_format Blif_format Circuit Gate Generate Goodsim Library QCheck QCheck_alcotest Rewrite Scan Stats String Util Validate Verilog_format
