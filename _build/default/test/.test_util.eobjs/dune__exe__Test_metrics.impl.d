test/test_metrics.ml: Alcotest Array Collapse Coverage Engine Fault_list Fun Generate QCheck QCheck_alcotest
