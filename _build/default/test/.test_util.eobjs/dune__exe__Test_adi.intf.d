test/test_adi.mli:
