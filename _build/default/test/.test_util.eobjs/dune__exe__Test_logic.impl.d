test/test_logic.ml: Alcotest Array Boolean Five Fun Gate Int64 List Logic_word QCheck QCheck_alcotest Ternary
