test/test_experiments.ml: Alcotest Coverage Evaluation Harness Kiss Lazy List Ordering Pipeline Reports String
