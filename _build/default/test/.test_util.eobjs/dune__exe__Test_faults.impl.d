test/test_faults.ml: Alcotest Array Circuit Collapse Fault Fault_list Gate Generate Library Option Patterns QCheck QCheck_alcotest Refsim
