examples/steep_coverage.mli:
