examples/quickstart.ml: Adi_atpg Adi_index Array Bench_format Circuit Collapse Engine Fault_list Format Ordering Patterns Rng
