examples/compaction_study.mli:
