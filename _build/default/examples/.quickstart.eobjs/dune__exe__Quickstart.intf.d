examples/quickstart.mli:
