examples/compaction_study.ml: Adi_atpg Circuit Compact Engine Format Library List Ordering Patterns Pipeline Table
