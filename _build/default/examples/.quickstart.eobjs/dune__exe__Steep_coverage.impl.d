examples/steep_coverage.ml: Adi_atpg Circuit Coverage Format List Ordering Pipeline Plot Suite
