examples/scan_flow.ml: Adi_atpg Array Bench_format Circuit Engine Format Goodsim Kiss List Ordering Patterns Pipeline Scan Seqsim String Testbench
