examples/diagnosis.ml: Adi_atpg Array Bitvec Circuit Dictionary Engine Fault Fault_list Format Library List Ordering Patterns Pipeline Refsim Rng
