examples/scan_flow.mli:
