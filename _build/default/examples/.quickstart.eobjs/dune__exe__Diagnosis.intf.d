examples/diagnosis.mli:
