(* Quickstart: load a circuit, look at its faults, compute accidental
   detection indices, and generate a compact test set.

   Run with:  dune exec examples/quickstart.exe *)

open Adi_atpg

let () =
  (* 1. A circuit.  Parse .bench text (or use Suite/Library builders). *)
  let circuit =
    Bench_format.parse_string ~title:"demo"
      {|# one-bit comparator-ish demo
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(z)
n1 = NAND(a, b)
n2 = NOR(b, c)
y  = XOR(n1, n2)
z  = AND(n1, c)
|}
  in
  Format.printf "circuit: %a@." Circuit.pp_summary circuit;

  (* 2. The stuck-at fault universe, equivalence-collapsed. *)
  let faults = Collapse.collapsed circuit in
  Format.printf "collapsed faults: %d@." (Fault_list.count faults);

  (* 3. Accidental detection indices from a random vector set U. *)
  let rng = Rng.create 1 in
  let selection = Adi_index.select_u ~pool:1000 rng faults in
  let adi = Adi_index.compute faults selection.Adi_index.u in
  Format.printf "|U| = %d vectors, U covers %.0f%% of faults@."
    (Patterns.count selection.Adi_index.u)
    (100.0 *. Adi_index.coverage_of_u adi);
  (match Adi_index.min_max adi with
  | Some (lo, hi) -> Format.printf "ADI range: %d .. %d@." lo hi
  | None -> ());

  (* 4. Order the faults (F0dynm: best for compact test sets) and
     generate tests. *)
  let order = Ordering.order Ordering.Dynm0 adi in
  let result = Engine.run faults ~order in
  Format.printf "generated %d tests, coverage %.1f%%@."
    (Patterns.count result.Engine.tests)
    (100.0 *. Engine.coverage faults result);

  (* 5. Show the vectors. *)
  Array.iteri (fun i s -> Format.printf "  t%d = %s@." i s)
    (Patterns.to_strings result.Engine.tests)
