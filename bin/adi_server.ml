(* adi-server: resident ADI/ATPG service.

   Holds the content-addressed artifact cache warm across requests and
   serves the length-prefixed JSON protocol (see docs/service.md) to
   concurrent clients over a Unix-domain or TCP socket. *)

open Cmdliner
module Trace = Util.Trace

let guard f =
  try f () with
  | Invalid_argument msg | Failure msg ->
      Printf.eprintf "adi-server: %s\n" msg;
      exit 1
  | Util.Diagnostics.Failed d ->
      Printf.eprintf "adi-server: %s\n" (Util.Diagnostics.to_string d);
      exit 2
  | Sys_error msg ->
      Printf.eprintf "adi-server: %s\n" msg;
      exit 1

let address_term =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket at $(docv).")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Listen on a TCP socket.")
  in
  let combine socket tcp =
    match (socket, tcp) with
    | Some path, None -> `Ok (Service.Server.Unix_socket path)
    | None, Some spec -> (
        match String.rindex_opt spec ':' with
        | Some i -> (
            let host = String.sub spec 0 i in
            let port = String.sub spec (i + 1) (String.length spec - i - 1) in
            match int_of_string_opt port with
            | Some port when port > 0 && port < 65536 -> `Ok (Service.Server.Tcp (host, port))
            | _ -> `Error (false, "--tcp expects HOST:PORT with a valid port"))
        | None -> `Error (false, "--tcp expects HOST:PORT"))
    | Some _, Some _ -> `Error (false, "pass either --socket or --tcp, not both")
    | None, None -> `Error (false, "an address is required: --socket PATH or --tcp HOST:PORT")
  in
  Term.(ret (const combine $ socket $ tcp))

let int_opt ~names ~docv ~doc ~default =
  Arg.(value & opt int default & info names ~docv ~doc)

let capacity_arg =
  int_opt ~names:[ "capacity" ] ~docv:"N" ~default:8
    ~doc:"Resident cache entries (0 disables caching)."

let workers_arg =
  int_opt ~names:[ "workers" ] ~docv:"N" ~default:4 ~doc:"Concurrent accept-serve lanes."

let backlog_arg =
  int_opt ~names:[ "backlog" ] ~docv:"N" ~default:16
    ~doc:"Kernel accept-queue bound for waiting connections."

let jobs_arg =
  int_opt ~names:[ "j"; "jobs" ] ~docv:"JOBS" ~default:1
    ~doc:"Default fault-simulation domains per request (requests may override)."

let spill_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spill" ] ~docv:"DIR"
        ~doc:"Spill evicted cache entries to $(docv) and reload them on demand.")

let spill_shared_arg =
  Arg.(
    value & flag
    & info [ "spill-shared" ]
        ~doc:
          "Treat the --spill directory as a fleet-shared second-level store: write fresh \
           artifacts through to disk immediately so sibling workers find them.")

let request_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "request-budget" ] ~docv:"S"
        ~doc:"Default per-request wall-clock budget in seconds (requests may override).")

let max_inflight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "Admit at most $(docv) requests into handlers at once; the rest wait briefly and \
           are then shed with a typed E-overload reply (default: the worker count).")

let queue_wait_arg =
  Arg.(
    value & opt float 0.1
    & info [ "queue-wait" ] ~docv:"S"
        ~doc:"How long a request may wait for an in-flight slot before being shed.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Print the metrics tables when the server drains.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Stream request spans and cache counters to $(docv) as JSON lines.")

let run address capacity workers backlog jobs spill spill_shared request_budget max_inflight
    queue_wait metrics trace =
  guard @@ fun () ->
  Util.Failpoint.install_from_env ();
  let cfg =
    Run_config.(default |> with_metrics metrics |> with_trace trace)
  in
  let (), report =
    Harness.with_observability cfg @@ fun () ->
    let tracer = Trace.current () in
    (* Trace header: version and shape of this server instance. *)
    Trace.instant tracer "service.start"
      ~attrs:
        [ ("version", Trace.Str Util.Version.version);
          ("address", Trace.Str (Service.Server.address_to_string address));
          ("workers", Trace.Int workers); ("capacity", Trace.Int capacity);
          ("jobs", Trace.Int jobs) ];
    let session =
      Service.Session.create ~capacity ?spill_dir:spill ~shared_spill:spill_shared ~jobs
        ?request_budget_s:request_budget ~tracer ()
    in
    let server =
      Service.Server.create ~workers ~backlog ?max_inflight ~queue_wait_s:queue_wait
        (Service.Session.backend session) address
    in
    Service.Server.serve server ~on_ready:(fun () ->
        Printf.printf "adi-server: v%s listening on %s (%d workers, capacity %d)\n"
          Util.Version.version
          (Service.Server.address_to_string address)
          workers capacity;
        flush stdout);
    Trace.instant tracer "service.stop"
      ~attrs:[ ("requests", Trace.Int (Service.Session.requests session)) ];
    Printf.printf "adi-server: drained after %d requests\n"
      (Service.Session.requests session)
  in
  Option.iter print_string report

let cmd =
  let info =
    Cmd.info "adi-server" ~version:Util.Version.version
      ~doc:"Resident ADI/ATPG service with a content-addressed artifact cache"
  in
  Cmd.v info
    Term.(
      const run $ address_term $ capacity_arg $ workers_arg $ backlog_arg $ jobs_arg
      $ spill_arg $ spill_shared_arg $ request_budget_arg $ max_inflight_arg $ queue_wait_arg
      $ metrics_arg $ trace_arg)

let () = exit (Cmd.eval cmd)
