(* adi-atpg: command-line front end.

   Circuits are named either by a synthetic-suite entry ("syn420"),
   a built-in ("c17", "lion"), or a path to a .bench file. *)

open Cmdliner

let load_circuit ?(recover = false) spec =
  if Sys.file_exists spec then begin
    let c =
      if recover then begin
        let c_opt, diags =
          if Filename.check_suffix spec ".blif" then Blif_format.parse_file_recover spec
          else Bench_format.parse_file_recover spec
        in
        List.iter
          (fun d -> Printf.eprintf "adi-atpg: %s\n" (Util.Diagnostics.to_string d))
          diags;
        match c_opt with
        | Some c -> c
        | None ->
            Printf.eprintf "adi-atpg: %s: no usable circuit after recovery\n" spec;
            exit 2
      end
      else if Filename.check_suffix spec ".blif" then Blif_format.parse_file spec
      else Bench_format.parse_file spec
    in
    if Circuit.has_state c then fst (Scan.combinational c) else c
  end
  else Suite.build_by_name spec

(* Turn library errors into clean CLI failures: exit 1 for usage
   errors, exit 2 for typed diagnostics (parse/checkpoint problems). *)
let guard f =
  try f () with
  | Invalid_argument msg | Failure msg ->
      Printf.eprintf "adi-atpg: %s\n" msg;
      exit 1
  | Util.Diagnostics.Failed d ->
      Printf.eprintf "adi-atpg: %s\n" (Util.Diagnostics.to_string d);
      exit 2
  | Sys_error msg ->
      Printf.eprintf "adi-atpg: %s\n" msg;
      exit 1

let recover_arg =
  Arg.(
    value & flag
    & info [ "recover" ]
        ~doc:
          "Best-effort netlist parsing: report and skip malformed statements instead of \
           failing on the first one.")

let circuit_arg =
  let doc = "Circuit: a suite name (syn208..syn13207), c17, lion, or a .bench file path." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let seed_arg =
  let doc = "Random seed (drives U selection and random fill)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

(* Every Run_config flag is described once, in [Run_flags]; build the
   cmdliner terms generically from that table.  The term evaluates to a
   [Run_config.t -> Run_config.t] so the builders (and their typed
   [Invalid_flag] diagnostics) run inside [guard], not during argument
   parsing. *)
let cfg_endo_term specs =
  let endo_of (s : Run_flags.spec) =
    let ainfo = Arg.info s.Run_flags.names ~docv:s.Run_flags.docv ~doc:s.Run_flags.doc in
    let opt_endo conv f =
      Term.(
        const (fun o cfg -> match o with None -> cfg | Some v -> f v cfg)
        $ Arg.value (Arg.opt (Arg.some conv) None ainfo))
    in
    match s.Run_flags.kind with
    | Run_flags.Flag f ->
        Term.(
          const (fun b cfg -> if b then f true cfg else cfg)
          $ Arg.value (Arg.flag ainfo))
    | Run_flags.Int f -> opt_endo Arg.int f
    | Run_flags.Float f -> opt_endo Arg.float f
    | Run_flags.String f -> opt_endo Arg.string f
  in
  List.fold_left
    (fun acc s -> Term.(const (fun g e cfg -> e (g cfg)) $ acc $ endo_of s))
    (Term.const Fun.id) specs

(* The CLI defaults [jobs] to the recommended domain count; everything
   else starts from [Run_config.default]. *)
let default_cfg () = Run_config.with_jobs (Util.Parallel.default_jobs ()) Run_config.default

let pipeline_cfg_term = cfg_endo_term Run_flags.pipeline_specs

(* --- stats ------------------------------------------------------- *)

let stats_cmd =
  let run spec recover = guard @@ fun () ->
    let c = load_circuit ~recover spec in
    Format.printf "%a@." Stats.pp (Stats.of_circuit c);
    List.iter
      (fun d -> Format.printf "%a@." Util.Diagnostics.pp d)
      (Validate.diagnostics c)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print circuit statistics")
    Term.(const run $ circuit_arg $ recover_arg)

(* --- faults ------------------------------------------------------ *)

let faults_cmd =
  let run spec = guard @@ fun () ->
    let c = load_circuit spec in
    let full = Fault_list.full c in
    let r = Collapse.equivalence full in
    let st = r.Collapse.stages in
    Printf.printf "full fault universe : %d\n" (Fault_list.count full);
    Printf.printf "collapsed (classes) : %d\n" (Fault_list.count r.Collapse.representatives);
    Printf.printf "collapse ratio      : %.2f\n" (Collapse.collapse_ratio r);
    Printf.printf "prime (dominance)   : %d\n" st.Collapse.prime;
    Printf.printf "dominance ratio     : %.2f\n" (Collapse.dominance_ratio r);
    Printf.printf "checkpoint classes  : %d\n" st.Collapse.checkpoints;
    Printf.printf "probe sites         : %d\n" st.Collapse.probes
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Count stuck-at faults before/after equivalence and dominance collapsing")
    Term.(const run $ circuit_arg)

(* --- sim --------------------------------------------------------- *)

let sim_cmd =
  let vectors =
    Arg.(value & opt int 1024 & info [ "n"; "vectors" ] ~docv:"N" ~doc:"Random vectors to simulate.")
  in
  let run spec n endo = guard @@ fun () ->
    let cfg = endo (default_cfg ()) in
    let c = load_circuit spec in
    let fl = Collapse.collapsed c in
    let rng = Util.Rng.create cfg.Run_config.seed in
    let pats = Patterns.random rng ~n_inputs:(Array.length (Circuit.inputs c)) ~count:n in
    let { Faultsim.detected; _ } =
      Faultsim.with_dropping ~jobs:cfg.Run_config.jobs
        ~block_width:cfg.Run_config.block_width fl pats
    in
    Printf.printf "%d random vectors detect %d / %d collapsed faults (%.2f%%)\n" n detected
      (Fault_list.count fl)
      (100.0 *. float_of_int detected /. float_of_int (Fault_list.count fl))
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Random-pattern fault simulation with dropping")
    Term.(const run $ circuit_arg $ vectors $ pipeline_cfg_term)

(* --- adi --------------------------------------------------------- *)

let adi_cmd =
  let run spec endo = guard @@ fun () ->
    let cfg = endo (default_cfg ()) in
    let c = load_circuit spec in
    let setup = Pipeline.prepare cfg c in
    let adi = setup.Pipeline.adi in
    let sel = setup.Pipeline.selection in
    Printf.printf "|U| = %d vectors (pool detected %d faults)\n"
      (Patterns.count sel.Adi_index.u) sel.Adi_index.pool_detected;
    Printf.printf "U fault coverage = %.3f\n" (Adi_index.coverage_of_u adi);
    (match Adi_index.min_max adi with
    | Some (lo, hi) ->
        Printf.printf "ADImin = %d, ADImax = %d, ratio = %.2f\n" lo hi
          (float_of_int hi /. float_of_int lo)
    | None -> print_endline "U detects no faults");
    (* Small histogram of ADI values. *)
    let det = Array.to_list adi.Adi_index.adi |> List.filter (fun a -> a > 0) in
    match det with
    | [] -> ()
    | _ ->
        let lo = List.fold_left min max_int det and hi = List.fold_left max 0 det in
        let buckets = 8 in
        let width = max 1 ((hi - lo + buckets) / buckets) in
        let counts = Array.make buckets 0 in
        List.iter
          (fun a ->
            let b = min (buckets - 1) ((a - lo) / width) in
            counts.(b) <- counts.(b) + 1)
          det;
        print_endline "ADI histogram (detected faults):";
        Array.iteri
          (fun b cnt ->
            Printf.printf "  [%4d..%4d] %s %d\n" (lo + (b * width))
              (lo + ((b + 1) * width) - 1)
              (String.make (min 60 cnt) '#')
              cnt)
          counts
  in
  Cmd.v
    (Cmd.info "adi" ~doc:"Compute accidental detection indices")
    Term.(const run $ circuit_arg $ pipeline_cfg_term)

(* --- order ------------------------------------------------------- *)

let order_spec =
  List.find (fun s -> List.mem "order" s.Run_flags.names) Run_flags.engine_specs

let order_cfg_term = cfg_endo_term (Run_flags.pipeline_specs @ [ order_spec ])

let order_cmd =
  let count =
    Arg.(value & opt int 20 & info [ "n" ] ~docv:"N" ~doc:"How many leading faults to print.")
  in
  let run spec endo n = guard @@ fun () ->
    let cfg = endo (default_cfg ()) in
    let kind = cfg.Run_config.order in
    let c = load_circuit spec in
    let setup = Pipeline.prepare cfg c in
    let order = Ordering.order kind setup.Pipeline.adi in
    Printf.printf "first %d faults of F%s:\n" (min n (Array.length order))
      (Ordering.to_string kind);
    Array.iteri
      (fun pos fi ->
        if pos < n then
          Printf.printf "  %3d. f%-5d ADI=%-5d %s\n" (pos + 1) fi
            setup.Pipeline.adi.Adi_index.adi.(fi)
            (Fault.to_string setup.Pipeline.circuit (Fault_list.get setup.Pipeline.faults fi)))
      order
  in
  Cmd.v
    (Cmd.info "order" ~doc:"Print the head of an ordered fault set")
    Term.(const run $ circuit_arg $ order_cfg_term $ count)

(* --- atpg -------------------------------------------------------- *)

let atpg_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write generated vectors, one per line.")
  in
  let run spec endo recover out = guard @@ fun () ->
    let cfg = endo (default_cfg ()) in
    let c = load_circuit ~recover spec in
    (* With a checkpoint configured, Ctrl-C requests a clean stop at the
       next fault boundary instead of killing the process mid-run. *)
    let stop = ref false in
    if cfg.Run_config.checkpoint <> None then
      Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
    let r = Harness.run_atpg_cfg ~should_stop:(fun () -> !stop) cfg c in
    if cfg.Run_config.checkpoint <> None then Sys.set_signal Sys.sigint Sys.Signal_default;
    let e = r.Harness.result in
    print_string r.Harness.report;
    Printf.printf "runtime     : %.3fs (%d decisions, %d backtracks)\n" e.Engine.runtime_s
      e.Engine.stats.Podem.decisions e.Engine.stats.Podem.backtracks;
    if e.Engine.spec_dispatched > 0 then
      Printf.printf "speculation : %d dispatched, %d committed, %d wasted\n"
        e.Engine.spec_dispatched e.Engine.spec_committed e.Engine.spec_wasted;
    (match r.Harness.checkpoint_saved with
    | Some path -> Printf.printf "checkpoint  : saved to %s (rerun with --resume)\n" path
    | None ->
        if e.Engine.interrupted then
          Printf.printf "checkpoint  : none (pass --checkpoint FILE to make runs resumable)\n");
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            Array.iter
              (fun s -> output_string oc (s ^ "\n"))
              (Patterns.to_strings e.Engine.tests));
        Printf.printf "wrote %s\n" path);
    Option.iter print_string r.Harness.metrics_report;
    if e.Engine.interrupted then exit 3
  in
  Cmd.v
    (Cmd.info "atpg" ~doc:"Generate a test set with a chosen fault order")
    Term.(
      const run $ circuit_arg $ cfg_endo_term Run_flags.atpg_specs $ recover_arg $ out)

(* --- gen --------------------------------------------------------- *)

let gen_cmd =
  let pis = Arg.(value & opt int 20 & info [ "pis" ] ~docv:"N" ~doc:"Primary inputs.") in
  let gates = Arg.(value & opt int 200 & info [ "gates" ] ~docv:"N" ~doc:"Logic gates.") in
  let spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "gen" ] ~docv:"SPEC"
          ~doc:
            "Use the parameterised scalable family instead of --pis/--gates/--seed: \
             comma-separated key=value pairs (gates, pis, outputs, seed, locality, \
             reconv, arity; integers accept k/m suffixes), e.g. \
             gates=100k,reconv=0.3,seed=7. Deterministic: the structural digest is \
             printed so runs can be cross-checked.")
  in
  let irr =
    Arg.(value & flag & info [ "irredundant" ] ~doc:"Run redundancy removal on the result.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Output .bench path.")
  in
  let run pis gates seed spec irr out = guard @@ fun () ->
    let c =
      match spec with
      | Some text -> Generate.build (Generate.spec_of_string text)
      | None -> Generate.random ~seed ~name:"generated" (Generate.profile ~pis ~gates ())
    in
    let c = if irr then fst (Irredundant.remove c) else c in
    if spec <> None then Printf.eprintf "digest: %s\n%!" (Generate.digest c);
    match out with
    | Some path ->
        if Filename.check_suffix path ".blif" then Blif_format.write_file path c
        else Bench_format.write_file path c;
        Format.printf "%a -> %s@." Circuit.pp_summary c path
    | None -> print_string (Bench_format.to_string c)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a random benchmark circuit")
    Term.(const run $ pis $ gates $ seed_arg $ spec $ irr $ out)

(* --- coverage ------------------------------------------------------ *)

let coverage_cmd =
  let tests_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "tests" ] ~docv:"FILE" ~doc:"Test vectors, one 0/1 row per line (PI order).")
  in
  let run spec tests_path = guard @@ fun () ->
    let c = load_circuit spec in
    let fl = Collapse.collapsed c in
    let pats = Patterns.load_file tests_path in
    if Patterns.n_inputs pats <> Array.length (Circuit.inputs c) then
      invalid_arg "test vector width does not match the circuit's inputs";
    let curve = Coverage.of_test_set fl pats in
    Printf.printf "tests        : %d\n" (Patterns.count pats);
    Printf.printf "faults       : %d collapsed\n" (Fault_list.count fl);
    Printf.printf "coverage     : %.3f\n" (Coverage.final_coverage curve);
    Printf.printf "AVE          : %.2f tests to detection\n" (Coverage.ave curve);
    List.iter
      (fun target ->
        match Coverage.tests_for_coverage curve ~target with
        | Some k -> Printf.printf "%.0f%% reached  : after %d tests\n" (100. *. target) k
        | None -> Printf.printf "%.0f%% reached  : never\n" (100. *. target))
      [ 0.5; 0.75; 0.9 ]
  in
  Cmd.v
    (Cmd.info "coverage" ~doc:"Evaluate an external test set: coverage, AVE, milestones")
    Term.(const run $ circuit_arg $ tests_arg)

(* --- scan-insert ---------------------------------------------------- *)

let scan_insert_cmd =
  let out =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT" ~doc:"Output netlist path.")
  in
  let run spec out = guard @@ fun () ->
    let c =
      if Sys.file_exists spec then
        if Filename.check_suffix spec ".blif" then Blif_format.parse_file spec
        else Bench_format.parse_file spec
      else invalid_arg "scan-insert expects a sequential netlist file"
    in
    let scanned, chain = Scan.insert_chain c in
    (if Filename.check_suffix out ".blif" then Blif_format.write_file out scanned
     else if Filename.check_suffix out ".v" then Verilog_format.write_file out scanned
     else Bench_format.write_file out scanned);
    Printf.printf "chain: %s\n" (String.concat " -> " (Array.to_list chain.Scan.cells));
    Printf.printf "tester cycles per test: %d\n" (Testbench.cycles_per_test chain);
    Format.printf "%a -> %s@." Circuit.pp_summary scanned out
  in
  Cmd.v
    (Cmd.info "scan-insert" ~doc:"Stitch all flip-flops into a mux-D scan chain")
    Term.(const run $ circuit_arg $ out)

(* --- convert ------------------------------------------------------ *)

let convert_cmd =
  let out =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT" ~doc:"Output path: .bench, .blif or .v")
  in
  let run spec out = guard @@ fun () ->
    let c =
      (* Keep sequential structure when converting formats. *)
      if Sys.file_exists spec then
        if Filename.check_suffix spec ".blif" then Blif_format.parse_file spec
        else Bench_format.parse_file spec
      else Suite.build_by_name spec
    in
    (if Filename.check_suffix out ".blif" then Blif_format.write_file out c
     else if Filename.check_suffix out ".v" then Verilog_format.write_file out c
     else Bench_format.write_file out c);
    Format.printf "%a -> %s@." Circuit.pp_summary c out
  in
  Cmd.v
    (Cmd.info "convert" ~doc:"Convert between .bench, .blif and (write-only) Verilog")
    Term.(const run $ circuit_arg $ out)

(* --- experiment -------------------------------------------------- *)

let experiment_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "One of: table1, table4, table5, table6, table7, figure1, ablation-static, \
             ablation-u, all.")
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Include the two large circuits (slow).")
  in
  let run which full seed =
    guard (fun () -> print_string (Harness.run_experiment ~seed ~full which))
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure from the paper")
    Term.(const run $ which $ full $ seed_arg)

let main_cmd =
  let info =
    Cmd.info "adi-atpg" ~version:Util.Version.version
      ~doc:"Accidental-detection-index fault ordering for full-scan ATPG (DATE 2005 reproduction)"
  in
  Cmd.group info
    [ stats_cmd; faults_cmd; sim_cmd; adi_cmd; order_cmd; atpg_cmd; gen_cmd; convert_cmd;
      coverage_cmd; scan_insert_cmd; experiment_cmd ]

let () =
  (* Arm chaos failpoints before any subcommand runs, so the offline
     CLI is injectable the same way the service binaries are; a
     malformed spec must fail loudly, not fake a clean run. *)
  (try Util.Failpoint.install_from_env ()
   with Util.Diagnostics.Failed d ->
     Printf.eprintf "adi-atpg: %s\n" (Util.Diagnostics.to_string d);
     exit 2);
  exit (Cmd.eval main_cmd)
