(* adi-router: consistent-hashing front door for a fleet of
   adi-server workers.

   Speaks the same wire protocol a worker does, but forwards instead
   of computing: requests are hashed by circuit digest onto a ring of
   workers (cache affinity), dead workers are skipped with minimal
   rehashing, and batch requests are split per worker and reassembled
   in request order.  A background domain re-probes worker health on a
   fixed interval; SIGTERM/SIGINT drain the router and, with
   --drain-workers, the whole fleet. *)

open Cmdliner
module Trace = Util.Trace

let guard f =
  try f () with
  | Invalid_argument msg | Failure msg ->
      Printf.eprintf "adi-router: %s\n" msg;
      exit 1
  | Util.Diagnostics.Failed d ->
      Printf.eprintf "adi-router: %s\n" (Util.Diagnostics.to_string d);
      exit 2
  | Sys_error msg ->
      Printf.eprintf "adi-router: %s\n" msg;
      exit 1

let parse_address ~flag spec =
  if String.length spec > 0 && (spec.[0] = '/' || spec.[0] = '.') then
    `Ok (Service.Server.Unix_socket spec)
  else
    match String.rindex_opt spec ':' with
    | Some i -> (
        let host = String.sub spec 0 i in
        let port = String.sub spec (i + 1) (String.length spec - i - 1) in
        match int_of_string_opt port with
        | Some port when port > 0 && port < 65536 -> `Ok (Service.Server.Tcp (host, port))
        | _ -> `Error (false, Printf.sprintf "%s expects HOST:PORT or a socket path" flag))
    | None -> `Ok (Service.Server.Unix_socket spec)

let address_term =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket at $(docv).")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Listen on a TCP socket.")
  in
  let combine socket tcp =
    match (socket, tcp) with
    | Some path, None -> `Ok (Service.Server.Unix_socket path)
    | None, Some spec -> parse_address ~flag:"--tcp" spec
    | Some _, Some _ -> `Error (false, "pass either --socket or --tcp, not both")
    | None, None -> `Error (false, "an address is required: --socket PATH or --tcp HOST:PORT")
  in
  Term.(ret (const combine $ socket $ tcp))

let workers_term =
  let specs =
    Arg.(
      value
      & opt_all string []
      & info [ "worker" ] ~docv:"ADDR"
          ~doc:
            "A worker adi-server address: a Unix socket path or HOST:PORT.  Repeat once \
             per worker.")
  in
  let combine specs =
    if specs = [] then `Error (false, "at least one --worker ADDR is required")
    else
      let rec parse acc = function
        | [] -> `Ok (List.rev acc)
        | spec :: rest -> (
            match parse_address ~flag:"--worker" spec with
            | `Ok addr -> parse (addr :: acc) rest
            | `Error _ as e -> e)
      in
      parse [] specs
  in
  Term.(ret (const combine $ specs))

let int_opt ~names ~docv ~doc ~default =
  Arg.(value & opt int default & info names ~docv ~doc)

let lanes_arg =
  int_opt ~names:[ "lanes" ] ~docv:"N" ~default:4 ~doc:"Concurrent accept-serve lanes."

let backlog_arg =
  int_opt ~names:[ "backlog" ] ~docv:"N" ~default:16
    ~doc:"Kernel accept-queue bound for waiting connections."

let vnodes_arg =
  int_opt ~names:[ "vnodes" ] ~docv:"N" ~default:64
    ~doc:"Virtual ring points per worker (more points, smoother key spread)."

let max_inflight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "Admit at most $(docv) requests at once; the rest wait briefly and are then \
           shed with a typed E-overload reply (default: the lane count).")

let queue_wait_arg =
  Arg.(
    value & opt float 0.1
    & info [ "queue-wait" ] ~docv:"S"
        ~doc:"How long a request may wait for an in-flight slot before being shed.")

let probe_interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "probe-interval" ] ~docv:"S"
        ~doc:"Seconds between background worker health probes (0 disables probing).")

let retries_arg =
  int_opt ~names:[ "retries" ] ~docv:"N" ~default:2
    ~doc:"Transport retries per forward before the worker is declared dead."

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"S" ~doc:"Overall deadline per forwarded request, in seconds.")

let drain_workers_arg =
  Arg.(
    value & flag
    & info [ "drain-workers" ]
        ~doc:"On shutdown, also send every worker a shutdown request (whole-fleet drain).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Print the metrics tables when the router drains.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Stream routing counters to $(docv) as JSON lines.")

let run address workers lanes backlog vnodes max_inflight queue_wait probe_interval retries
    timeout drain_workers metrics trace =
  guard @@ fun () ->
  Util.Failpoint.install_from_env ();
  let cfg = Run_config.(default |> with_metrics metrics |> with_trace trace) in
  let (), report =
    Harness.with_observability cfg @@ fun () ->
    let tracer = Trace.current () in
    Trace.instant tracer "router.start"
      ~attrs:
        [ ("version", Trace.Str Util.Version.version);
          ("address", Trace.Str (Service.Server.address_to_string address));
          ("workers", Trace.Int (List.length workers)); ("lanes", Trace.Int lanes) ];
    let policy =
      { Service.Client.default_policy with
        Util.Retry.max_attempts = retries + 1;
        overall_budget_s = timeout }
    in
    let router = Service.Router.create ~vnodes ~policy ~tracer workers in
    let server =
      Service.Server.create ~workers:lanes ~backlog ?max_inflight ~queue_wait_s:queue_wait
        (Service.Router.backend router) address
    in
    (* Background health probing: flips workers dead and alive while
       the accept lanes keep serving.  The domain wakes often enough
       to notice a stop request promptly even with long intervals. *)
    let stop_probe = Atomic.make false in
    let prober =
      if probe_interval <= 0.0 then None
      else
        Some
          (Domain.spawn (fun () ->
               let rec loop slept =
                 if not (Atomic.get stop_probe) then
                   if slept >= probe_interval then begin
                     Service.Router.probe router;
                     loop 0.0
                   end
                   else begin
                     Unix.sleepf 0.05;
                     loop (slept +. 0.05)
                   end
               in
               loop probe_interval))
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop_probe true;
        Option.iter Domain.join prober)
      (fun () ->
        Service.Server.serve server ~on_ready:(fun () ->
            Printf.printf "adi-router: v%s listening on %s (%d workers)\n"
              Util.Version.version
              (Service.Server.address_to_string address)
              (List.length workers);
            flush stdout));
    if drain_workers then Service.Router.drain_fleet router;
    Trace.instant tracer "router.stop"
      ~attrs:[ ("requests", Trace.Int (Service.Router.requests router)) ];
    Printf.printf "adi-router: drained after %d requests\n" (Service.Router.requests router)
  in
  Option.iter print_string report

let cmd =
  let info =
    Cmd.info "adi-router" ~version:Util.Version.version
      ~doc:"Consistent-hashing router for a fleet of adi-server workers"
  in
  Cmd.v info
    Term.(
      const run $ address_term $ workers_term $ lanes_arg $ backlog_arg $ vnodes_arg
      $ max_inflight_arg $ queue_wait_arg $ probe_interval_arg $ retries_arg $ timeout_arg
      $ drain_workers_arg $ metrics_arg $ trace_arg)

let () = exit (Cmd.eval cmd)
