(* adi-client: command-line client for adi-server.

   Builds one JSON request per invocation and sends it through the
   resilient {!Service.Client}: transient transport failures (refused
   connections, corrupt frames, overload sheds) are retried with
   jittered exponential backoff up to [--retries] extra attempts,
   all under the [--timeout] overall deadline.  The result object is
   printed on stdout; server-side error replies map to a nonzero exit
   with the same typed [E-...] code a local run would report.  Exit
   codes: 1 usage, 2 typed failure, 4 deadline expiry (a local
   timeout or a server [E-budget] reply).  The client never hangs and
   never dies silently. *)

open Cmdliner
module Json = Util.Json
module Diagnostics = Util.Diagnostics

let budget_code = Diagnostics.code_string Diagnostics.Budget_expired

let guard f =
  try f () with
  | Invalid_argument msg | Failure msg ->
      Printf.eprintf "adi-client: %s\n" msg;
      exit 1
  | Util.Diagnostics.Failed d ->
      Printf.eprintf "adi-client: %s [%s]\n" d.Diagnostics.message
        (Diagnostics.code_string d.Diagnostics.code);
      (* Deadline expiry is distinguishable from a protocol failure so
         callers can tell "slow" from "broken". *)
      exit (if d.Diagnostics.code = Diagnostics.Budget_expired then 4 else 2)
  | Sys_error msg ->
      Printf.eprintf "adi-client: %s\n" msg;
      exit 1

(* --- connection --------------------------------------------------- *)

let with_client target ~timeout_s ~retries f =
  let policy =
    { Service.Client.default_policy with
      Util.Retry.max_attempts = retries + 1;
      overall_budget_s = Some timeout_s }
  in
  let client = Service.Client.create ~policy target in
  Fun.protect ~finally:(fun () -> Service.Client.close client) (fun () -> f client)

let report_error (e : Service.Protocol.error) =
  Printf.eprintf "adi-client: %s [%s]\n" e.Service.Protocol.message e.Service.Protocol.code;
  exit (if e.Service.Protocol.code = budget_code then 4 else 2)

let print_payload = function
  | Ok result -> print_endline (Json.to_string result)
  | Error e -> report_error e

let request target ~timeout_s ~retries op params =
  with_client target ~timeout_s ~retries (fun client ->
      print_payload (Service.Client.request client op params))

(* --- arguments ---------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Connect to a Unix-domain socket at $(docv).")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Connect over TCP.")

let parse_target socket tcp =
  match (socket, tcp) with
  | Some path, None -> `Ok (Service.Server.Unix_socket path)
  | None, Some spec -> (
      match String.rindex_opt spec ':' with
      | Some i -> (
          let host = String.sub spec 0 i in
          let port = String.sub spec (i + 1) (String.length spec - i - 1) in
          match int_of_string_opt port with
          | Some port when port > 0 && port < 65536 -> `Ok (Service.Server.Tcp (host, port))
          | _ -> `Error (false, "--tcp expects HOST:PORT with a valid port"))
      | None -> `Error (false, "--tcp expects HOST:PORT"))
  | Some _, Some _ -> `Error (false, "pass either --socket or --tcp, not both")
  | None, None -> `Error (false, "a server address is required: --socket PATH or --tcp HOST:PORT")

let target_term = Term.(ret (const parse_target $ socket_arg $ tcp_arg))

let timeout_arg =
  Arg.(
    value & opt float 60.0
    & info [ "timeout" ] ~docv:"S"
        ~doc:"Overall deadline in seconds across all attempts; expiry exits with code 4.")

let retries_arg =
  Arg.(
    value & opt int 2
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry a transiently failed request up to $(docv) extra times with jittered \
           exponential backoff.  Pass 0 to fail on the first error.")

let circuit_arg =
  let doc =
    "Circuit: a suite name (syn208..syn13207, c17, lion) or a .bench file path (sent inline)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

(* A local .bench file is read here and shipped inline, so the server
   never needs to share a file system with its clients. *)
let circuit_params spec =
  if Sys.file_exists spec then begin
    let ic = open_in_bin spec in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    [ ("netlist", Json.Str text) ]
  end
  else [ ("circuit", Json.Str spec) ]

let opt_param ?param name conv arg_conv doc docv =
  let param = Option.value param ~default:name in
  let term = Arg.(value & opt (some arg_conv) None & info [ name ] ~docv ~doc) in
  let pair x = (param, conv x) in
  Term.(const (Option.map pair) $ term)

let config_params_term =
  let int_p name doc docv = opt_param name (fun i -> Json.Int i) Arg.int doc docv in
  let float_p name doc docv = opt_param name (fun f -> Json.Float f) Arg.float doc docv in
  let str_p name doc docv = opt_param name (fun s -> Json.Str s) Arg.string doc docv in
  let gather seed pool tc jobs width kernel order backtracks retries budget =
    List.filter_map Fun.id
      [ seed; pool; tc; jobs; width; kernel; order; backtracks; retries; budget ]
  in
  Term.(
    const gather
    $ int_p "seed" "Random seed (drives U selection and random fill)." "SEED"
    $ int_p "pool" "Candidate-vector pool size for U selection." "N"
    $ float_p "target_coverage" "U-selection coverage target, in (0, 1]." "C"
    $ int_p "jobs" "Fault-simulation domains for this request." "JOBS"
    $ opt_param ~param:"block_width" "block-width" (fun i -> Json.Int i) Arg.int
        "Words per simulation lane: 1, 2, 4 or 8 (the $(b,block_width) request \
         parameter; results are identical for any width)." "W"
    $ str_p "kernel" "Fault-simulation kernel: event, stem or cpt." "KERNEL"
    $ str_p "order" "Fault order: orig, incr0, decr, 0decr, dynm, 0dynm." "ORDER"
    $ int_p "backtracks" "PODEM backtrack limit." "B"
    $ opt_param ~param:"retries" "abort-retries" (fun i -> Json.Int i) Arg.int
        "Abort-retry escalation passes (the $(b,retries) request parameter)." "R"
    $ float_p "budget_s" "Per-request wall-clock budget in seconds." "S")

let circuit_cmd name ~doc ~extra_params =
  let run target timeout retries spec params extra =
    guard @@ fun () ->
    request target ~timeout_s:timeout ~retries name (circuit_params spec @ params @ extra)
  in
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      const run $ target_term $ timeout_arg $ retries_arg $ circuit_arg $ config_params_term
      $ extra_params)

let limit_term =
  let term =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"Truncate the reported permutation to $(docv) faults.")
  in
  Term.(
    const (fun v -> match v with Some n -> [ ("limit", Json.Int n) ] | None -> []) $ term)

let no_extra = Term.const []

let load_cmd = circuit_cmd "load" ~doc:"Parse, collapse, select U and compute ADI (warms the cache)" ~extra_params:no_extra
let adi_cmd = circuit_cmd "adi" ~doc:"ADI summary (ADImin/ADImax/ratio)" ~extra_params:no_extra
let order_cmd = circuit_cmd "order" ~doc:"Compute a fault ordering" ~extra_params:limit_term
let atpg_cmd = circuit_cmd "atpg" ~doc:"Generate a test set" ~extra_params:no_extra

(* Diagnosis: ship the observed failure log (failing test indices, an
   optional applied-prefix length, optional full per-output responses)
   and print the ranked candidates. *)
let diagnose_params =
  let fails_term =
    let term =
      Arg.(
        value
        & opt (some string) None
        & info [ "fails" ] ~docv:"I,J,…"
            ~doc:"Comma-separated indices of the tests the device failed.")
    in
    let parse = function
      | None -> []
      | Some spec ->
          let items =
            List.map
              (fun s ->
                match int_of_string_opt (String.trim s) with
                | Some i -> Json.Int i
                | None -> invalid_arg (Printf.sprintf "--fails: %S is not a test index" s))
              (String.split_on_char ',' spec)
          in
          [ ("fails", Json.Arr items) ]
    in
    Term.(const parse $ term)
  in
  let applied_term =
    let term =
      Arg.(
        value
        & opt (some int) None
        & info [ "applied" ] ~docv:"N"
            ~doc:
              "Number of tests actually applied (a prefix of the dictionary's test set); \
               omit when the full set was applied.")
    in
    Term.(
      const (fun v -> match v with Some n -> [ ("applied", Json.Int n) ] | None -> []) $ term)
  in
  let response_term =
    let term =
      Arg.(
        value & opt_all string []
        & info [ "response" ] ~docv:"TEST:OUTPUTS"
            ~doc:
              "A full observed response, e.g. $(b,--response 3:01101): the device's output \
               bits on test 3.  Repeatable; sharper than a pass/fail verdict.")
    in
    let parse specs =
      match specs with
      | [] -> []
      | specs ->
          let item spec =
            match String.index_opt spec ':' with
            | Some i ->
                let test = String.sub spec 0 i in
                let outs = String.sub spec (i + 1) (String.length spec - i - 1) in
                (match int_of_string_opt test with
                | Some t ->
                    Json.Obj [ ("test", Json.Int t); ("outputs", Json.Str outs) ]
                | None ->
                    invalid_arg (Printf.sprintf "--response: %S is not TEST:OUTPUTS" spec))
            | None -> invalid_arg (Printf.sprintf "--response: %S is not TEST:OUTPUTS" spec)
          in
          [ ("responses", Json.Arr (List.map item specs)) ]
    in
    Term.(const parse $ term)
  in
  let candidates_term =
    let term =
      Arg.(
        value
        & opt (some int) None
        & info [ "candidates" ] ~docv:"N"
            ~doc:"Report the top $(docv) ranked candidates (server default 10).")
    in
    Term.(
      const (fun v -> match v with Some n -> [ ("limit", Json.Int n) ] | None -> []) $ term)
  in
  Term.(
    const (fun a b c d -> a @ b @ c @ d)
    $ fails_term $ applied_term $ response_term $ candidates_term)

let diagnose_cmd =
  circuit_cmd "diagnose"
    ~doc:
      "Diagnose an observed failure log: rank dictionary candidates for the failing tests"
    ~extra_params:diagnose_params

let plain_cmd name ~doc ~params_term =
  let run target timeout retries params =
    guard @@ fun () -> request target ~timeout_s:timeout ~retries name params
  in
  Cmd.v
    (Cmd.info name ~doc)
    Term.(const run $ target_term $ timeout_arg $ retries_arg $ params_term)

let stats_cmd = plain_cmd "stats" ~doc:"Server statistics (version, cache hit/miss counters)" ~params_term:(Term.const [])

let health_cmd =
  plain_cmd "health"
    ~doc:"Liveness probe: version, uptime, in-flight, shed and restart counters"
    ~params_term:(Term.const [])

let evict_params =
  let term =
    Arg.(
      value
      & opt (some string) None
      & info [ "key" ] ~docv:"KEY" ~doc:"Evict one cache key; omit to clear the whole cache.")
  in
  Term.(
    const (fun v -> match v with Some k -> [ ("key", Json.Str k) ] | None -> []) $ term)

let evict_cmd = plain_cmd "evict" ~doc:"Evict cache entries" ~params_term:evict_params
let shutdown_cmd = plain_cmd "shutdown" ~doc:"Drain in-flight requests and stop the server" ~params_term:(Term.const [])

let hello_cmd =
  let run target timeout retries =
    guard @@ fun () ->
    with_client target ~timeout_s:timeout ~retries (fun client ->
        match Service.Client.hello client () with
        | Ok version ->
            print_endline (Json.to_string (Json.Obj [ ("version", Json.Int version) ]))
        | Error d -> raise (Diagnostics.Failed d))
  in
  Cmd.v
    (Cmd.info "hello" ~doc:"Negotiate a protocol version and print it")
    Term.(const run $ target_term $ timeout_arg $ retries_arg)

(* One round-trip, many circuits: each CIRCUIT becomes one batch item
   carrying the shared config parameters.  Per-item outcomes come back
   in request order, byte-identical to the equivalent single ops. *)
let batch_cmd =
  let op_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OP" ~doc:"Batched op: $(b,adi), $(b,order), $(b,atpg) or $(b,diagnose).")
  in
  let circuits_arg =
    Arg.(
      non_empty
      & pos_right 0 string []
      & info [] ~docv:"CIRCUIT"
          ~doc:"Circuits (suite names or .bench file paths), one batch item each.")
  in
  let run target timeout retries op specs params =
    guard @@ fun () ->
    let op =
      match Service.Protocol.op_of_name op with
      | Some op when Service.Protocol.batchable op -> op
      | _ ->
          invalid_arg
            (Printf.sprintf "batch: op %S has no batch form (use adi, order, atpg or diagnose)" op)
    in
    let items = List.map (fun spec -> circuit_params spec @ params) specs in
    with_client target ~timeout_s:timeout ~retries (fun client ->
        match Service.Client.batch client op items with
        | Error d -> raise (Diagnostics.Failed d)
        | Ok replies ->
            let item = function
              | Ok result -> Json.Obj [ ("ok", Json.Bool true); ("result", result) ]
              | Error (e : Service.Protocol.error) ->
                  Json.Obj
                    [ ("ok", Json.Bool false);
                      ("error",
                       Json.Obj
                         [ ("code", Json.Str e.Service.Protocol.code);
                           ("message", Json.Str e.Service.Protocol.message) ]) ]
            in
            print_endline
              (Json.to_string (Json.Obj [ ("results", Json.Arr (List.map item replies)) ])))
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run one op over many circuits in a single protocol v2 batch request")
    Term.(
      const run $ target_term $ timeout_arg $ retries_arg $ op_arg $ circuits_arg
      $ config_params_term)

(* The pre-v2 `raw` subcommand survives only as `--raw` on the group
   default — deprecated protocol-debugging surface, not an op. *)
let raw_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "raw" ] ~docv:"JSON"
        ~doc:
          "Send $(docv) verbatim as one request payload and print the reply payload \
           (deprecated protocol-debugging surface; use the typed subcommands).")

let default_term =
  let run socket tcp timeout retries raw =
    match raw with
    | None -> `Help (`Pager, None)
    | Some payload -> (
        match parse_target socket tcp with
        | `Error _ as e -> e
        | `Ok target ->
            `Ok
              (guard @@ fun () ->
               with_client target ~timeout_s:timeout ~retries (fun client ->
                   let reply = Service.Client.raw client payload in
                   match
                     Result.bind (Json.of_string reply) Service.Protocol.response_of_json
                   with
                   | Error msg -> Diagnostics.fail Diagnostics.Protocol "unreadable reply: %s" msg
                   | Ok { Service.Protocol.payload; _ } -> (
                       match payload with
                       | Ok (Service.Protocol.Result result) ->
                           print_endline (Json.to_string result)
                       | Ok reply ->
                           print_endline
                             (Json.to_string
                                (Service.Protocol.response_to_json
                                   { Service.Protocol.id = 0; payload = Ok reply }))
                       | Error e -> report_error e))))
  in
  Term.(ret (const run $ socket_arg $ tcp_arg $ timeout_arg $ retries_arg $ raw_arg))

let cmd =
  let info =
    Cmd.info "adi-client" ~version:Util.Version.version
      ~doc:"Client for the resident ADI/ATPG service (adi-server)"
  in
  Cmd.group ~default:default_term info
    [ load_cmd; adi_cmd; order_cmd; atpg_cmd; diagnose_cmd; batch_cmd; stats_cmd; health_cmd; evict_cmd;
      shutdown_cmd; hello_cmd ]

let () =
  (try Util.Failpoint.install_from_env ()
   with Util.Diagnostics.Failed d ->
     Printf.eprintf "adi-client: %s [%s]\n" d.Util.Diagnostics.message
       (Util.Diagnostics.code_string d.Util.Diagnostics.code);
     exit 1);
  exit (Cmd.eval cmd)
