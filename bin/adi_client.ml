(* adi-client: command-line client for adi-server.

   Builds one JSON request per invocation, sends it over the
   length-prefixed framing, prints the result object on stdout, and
   maps server-side error replies to a nonzero exit with the same
   typed [E-...] code a local run would report.  Connection problems
   and reply timeouts are reported as typed diagnostics too — the
   client never hangs and never dies silently. *)

open Cmdliner
module Json = Util.Json
module Diagnostics = Util.Diagnostics

let guard f =
  try f () with
  | Invalid_argument msg | Failure msg ->
      Printf.eprintf "adi-client: %s\n" msg;
      exit 1
  | Util.Diagnostics.Failed d ->
      Printf.eprintf "adi-client: %s [%s]\n" d.Diagnostics.message
        (Diagnostics.code_string d.Diagnostics.code);
      exit 2
  | Sys_error msg ->
      Printf.eprintf "adi-client: %s\n" msg;
      exit 1

(* --- connection --------------------------------------------------- *)

type target = Unix_path of string | Tcp of string * int

let connect target =
  let fail_connect name =
    (* Normalised message (no errno text), so failure modes are
       deterministic across platforms. *)
    Diagnostics.fail Diagnostics.Io_error "cannot connect to %s" name
  in
  match target with
  | Unix_path path -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      with Unix.Unix_error (_, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        fail_connect path)
  | Tcp (host, port) -> (
      let name = Printf.sprintf "%s:%d" host port in
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) -> fail_connect name
          | { Unix.h_addr_list; _ } -> h_addr_list.(0))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_INET (inet, port));
        fd
      with Unix.Unix_error (_, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        fail_connect name)

let await_reply fd ~timeout_s =
  match Unix.select [ fd ] [] [] timeout_s with
  | [], _, _ ->
      Diagnostics.fail Diagnostics.Budget_expired "no reply within %gs" timeout_s
  | _ -> (
      match Service.Protocol.read_frame fd with
      | Some payload -> payload
      | None -> Diagnostics.fail Diagnostics.Io_error "server closed the connection")

let exchange target ~timeout_s payload =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = connect target in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Service.Protocol.write_frame fd payload;
      await_reply fd ~timeout_s)

let print_response raw =
  match Result.bind (Json.of_string raw) Service.Protocol.response_of_json with
  | Error msg -> Diagnostics.fail Diagnostics.Protocol "unreadable reply: %s" msg
  | Ok { Service.Protocol.payload = Ok result; _ } -> print_endline (Json.to_string result)
  | Ok { Service.Protocol.payload = Error e; _ } ->
      Printf.eprintf "adi-client: %s [%s]\n" e.Service.Protocol.message e.Service.Protocol.code;
      exit 2

let request target ~timeout_s op params =
  let req = { Service.Protocol.id = 1; op; params } in
  let raw =
    exchange target ~timeout_s (Json.to_string (Service.Protocol.request_to_json req))
  in
  print_response raw

(* --- arguments ---------------------------------------------------- *)

let target_term =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Connect to a Unix-domain socket at $(docv).")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Connect over TCP.")
  in
  let combine socket tcp =
    match (socket, tcp) with
    | Some path, None -> `Ok (Unix_path path)
    | None, Some spec -> (
        match String.rindex_opt spec ':' with
        | Some i -> (
            let host = String.sub spec 0 i in
            let port = String.sub spec (i + 1) (String.length spec - i - 1) in
            match int_of_string_opt port with
            | Some port when port > 0 && port < 65536 -> `Ok (Tcp (host, port))
            | _ -> `Error (false, "--tcp expects HOST:PORT with a valid port"))
        | None -> `Error (false, "--tcp expects HOST:PORT"))
    | Some _, Some _ -> `Error (false, "pass either --socket or --tcp, not both")
    | None, None -> `Error (false, "a server address is required: --socket PATH or --tcp HOST:PORT")
  in
  Term.(ret (const combine $ socket $ tcp))

let timeout_arg =
  Arg.(
    value & opt float 60.0
    & info [ "timeout" ] ~docv:"S" ~doc:"Give up waiting for a reply after $(docv) seconds.")

let circuit_arg =
  let doc =
    "Circuit: a suite name (syn208..syn13207, c17, lion) or a .bench file path (sent inline)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

(* A local .bench file is read here and shipped inline, so the server
   never needs to share a file system with its clients. *)
let circuit_params spec =
  if Sys.file_exists spec then begin
    let ic = open_in_bin spec in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    [ ("netlist", Json.Str text) ]
  end
  else [ ("circuit", Json.Str spec) ]

let opt_param name conv arg_conv doc docv =
  let term = Arg.(value & opt (some arg_conv) None & info [ name ] ~docv ~doc) in
  let pair x = (name, conv x) in
  Term.(const (Option.map pair) $ term)

let config_params_term =
  let int_p name doc docv = opt_param name (fun i -> Json.Int i) Arg.int doc docv in
  let float_p name doc docv = opt_param name (fun f -> Json.Float f) Arg.float doc docv in
  let str_p name doc docv = opt_param name (fun s -> Json.Str s) Arg.string doc docv in
  let gather seed pool tc jobs order backtracks retries budget =
    List.filter_map Fun.id [ seed; pool; tc; jobs; order; backtracks; retries; budget ]
  in
  Term.(
    const gather
    $ int_p "seed" "Random seed (drives U selection and random fill)." "SEED"
    $ int_p "pool" "Candidate-vector pool size for U selection." "N"
    $ float_p "target_coverage" "U-selection coverage target, in (0, 1]." "C"
    $ int_p "jobs" "Fault-simulation domains for this request." "JOBS"
    $ str_p "order" "Fault order: orig, incr0, decr, 0decr, dynm, 0dynm." "ORDER"
    $ int_p "backtracks" "PODEM backtrack limit." "B"
    $ int_p "retries" "Abort-retry escalation passes." "R"
    $ float_p "budget_s" "Per-request wall-clock budget in seconds." "S")

let circuit_cmd name ~doc ~extra_params =
  let run target timeout spec params extra =
    guard @@ fun () ->
    request target ~timeout_s:timeout name (circuit_params spec @ params @ extra)
  in
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      const run $ target_term $ timeout_arg $ circuit_arg $ config_params_term $ extra_params)

let limit_term =
  let term =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"Truncate the reported permutation to $(docv) faults.")
  in
  Term.(
    const (fun v -> match v with Some n -> [ ("limit", Json.Int n) ] | None -> []) $ term)

let no_extra = Term.const []

let load_cmd = circuit_cmd "load" ~doc:"Parse, collapse, select U and compute ADI (warms the cache)" ~extra_params:no_extra
let adi_cmd = circuit_cmd "adi" ~doc:"ADI summary (ADImin/ADImax/ratio)" ~extra_params:no_extra
let order_cmd = circuit_cmd "order" ~doc:"Compute a fault ordering" ~extra_params:limit_term
let atpg_cmd = circuit_cmd "atpg" ~doc:"Generate a test set" ~extra_params:no_extra

let plain_cmd name ~doc ~params_term =
  let run target timeout params = guard @@ fun () -> request target ~timeout_s:timeout name params in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ target_term $ timeout_arg $ params_term)

let stats_cmd = plain_cmd "stats" ~doc:"Server statistics (version, cache hit/miss counters)" ~params_term:(Term.const [])

let evict_params =
  let term =
    Arg.(
      value
      & opt (some string) None
      & info [ "key" ] ~docv:"KEY" ~doc:"Evict one cache key; omit to clear the whole cache.")
  in
  Term.(
    const (fun v -> match v with Some k -> [ ("key", Json.Str k) ] | None -> []) $ term)

let evict_cmd = plain_cmd "evict" ~doc:"Evict cache entries" ~params_term:evict_params
let shutdown_cmd = plain_cmd "shutdown" ~doc:"Drain in-flight requests and stop the server" ~params_term:(Term.const [])

let raw_cmd =
  let payload_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JSON" ~doc:"Raw request payload.")
  in
  let run target timeout payload =
    guard @@ fun () -> print_response (exchange target ~timeout_s:timeout payload)
  in
  Cmd.v
    (Cmd.info "raw" ~doc:"Send an arbitrary payload (protocol debugging)")
    Term.(const run $ target_term $ timeout_arg $ payload_arg)

let cmd =
  let info =
    Cmd.info "adi-client" ~version:Util.Version.version
      ~doc:"Client for the resident ADI/ATPG service (adi-server)"
  in
  Cmd.group info
    [ load_cmd; adi_cmd; order_cmd; atpg_cmd; stats_cmd; evict_cmd; shutdown_cmd; raw_cmd ]

let () = exit (Cmd.eval cmd)
